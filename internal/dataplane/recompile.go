package dataplane

import (
	"fmt"
	"math"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/par"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
)

// Recompiler performs incremental FIB recompilation for planned topology
// changes — maintenance weight shifts, link additions, link
// decommissions. A full Compile is the offline O(n²·log n) rebuild the
// paper assigns to the designated server; the recompiler instead
// identifies the destination trees an edit set actually touches, repairs
// only those (graph.SPTRepairer for weight changes, per-destination
// Dijkstra for structural edits), re-ranks only the dirty quantiser
// columns, and patches only the dirty FIB columns. The result is
// bit-identical to a from-scratch CompileWith over the same graph,
// rotation system and routing tables (proven by the differential harness
// in recompile_test.go), at a fraction of the latency — the control
// plane can push updates without stalling.
//
// A Recompiler is a single-writer control-plane object: Apply is not
// safe for concurrent use, but every artefact it produces (Delta's
// graph, tables, FIB, protocol) is immutable and safe to hand to
// concurrent readers, including a running Engine via ApplyDelta.
type Recompiler struct {
	variant   core.Variant
	quantised bool // the source protocol stamps ranks into Header.DD
	disc      route.Discriminator

	g     *graph.Graph
	sys   *rotation.System
	tbl   *route.Table
	quant *core.Quantiser
	fib   *FIB

	// reps is the per-worker repairer pool: SPTRepairer keeps scratch
	// state and is not safe for concurrent use, but each repair's result
	// is a canonical function of (graph, tree, edit), so any worker may
	// serve any destination; the static partition in Apply keeps the
	// dst→worker assignment deterministic anyway. Grown on demand, the
	// pool persists across applies so the scratch amortises like the old
	// single repairer did.
	reps []graph.SPTRepairer
	// workers pins the Apply fan-out; 0 = automatic (see SetWorkers).
	workers int
	stats   recompileCounters
	// tracer receives Apply's span tree (nil traces nothing): a root
	// "recompile.apply" with coalesce / per-edit repair or structural
	// replay / rebuild / patch children, repairs and patches carrying
	// per-worker grandchildren.
	tracer *telemetry.Tracer
}

// SetTracer arms span tracing on subsequent Applies (nil disarms).
func (r *Recompiler) SetTracer(t *telemetry.Tracer) { r.tracer = t }

// recompileCounters accumulates recompiler work; Register publishes the
// totals as the recompile.* snapshot names alongside the repairer pool's
// repair.* counters.
type recompileCounters struct {
	applies, edits int
	// dirtyDests sums affected destinations across applies; fullDests
	// counts how many of those needed a from-scratch per-destination
	// Dijkstra (structural edits) rather than an incremental repair.
	dirtyDests, fullDests int64
	// coalescedEdits counts edits batch coalescing eliminated before
	// replay (net weight last-write-wins, add+remove cancellation).
	coalescedEdits int64
}

// SetWorkers pins the per-destination fan-out of subsequent Applies: 0
// restores the automatic GOMAXPROCS-based count, 1 forces sequential
// repairs. The differential harnesses use explicit counts to drive the
// parallel paths on graphs below the automatic fan-out floor.
func (r *Recompiler) SetWorkers(w int) { r.workers = w }

// pool returns at least `workers` repairers.
func (r *Recompiler) pool(workers int) []graph.SPTRepairer {
	for len(r.reps) < workers {
		r.reps = append(r.reps, graph.SPTRepairer{})
	}
	return r.reps
}

// Delta is the product of one Apply: the edited network's complete
// forwarding state, plus the bookkeeping an engine needs to hot-swap
// onto it.
type Delta struct {
	// Graph is the edited topology; System, Table, Quantiser and FIB are
	// its forwarding state, sharing every untouched per-destination
	// structure with the pre-edit versions.
	Graph     *graph.Graph
	System    *rotation.System
	Table     *route.Table
	Quantiser *core.Quantiser
	FIB       *FIB
	// Protocol is the interpreted protocol over the same state —
	// bit-identical decisions to FIB, for simulators and walks.
	Protocol *core.Protocol
	// LinkMap maps the pre-edit link IDs into the edited graph's
	// (graph.NoLink for removed links). Engine.ApplyDelta uses it to
	// carry detected failures across the swap.
	LinkMap []graph.LinkID
	// Dirty lists the destinations whose trees the edit set touched.
	Dirty []graph.NodeID
	// Structural reports whether the link set (and dart space) changed.
	Structural bool
}

// NewRecompiler builds a recompiler over a compiled network's state. The
// quantiser and FIB may be nil, in which case they are built here
// (CompileWith rules: a quantised protocol's own quantiser wins).
func NewRecompiler(p *core.Protocol, quant *core.Quantiser, fib *FIB) (*Recompiler, error) {
	if p == nil {
		return nil, fmt.Errorf("dataplane: nil protocol")
	}
	if p.Quantiser() != nil {
		quant = p.Quantiser()
	} else if quant == nil {
		quant = core.BuildQuantiser(p.Routes())
	}
	if fib == nil {
		var err error
		if fib, err = CompileWith(p, quant); err != nil {
			return nil, err
		}
	}
	if fib.NumNodes() != p.Graph().NumNodes() || fib.NumLinks() != p.Graph().NumLinks() {
		return nil, fmt.Errorf("dataplane: FIB sized %d/%d for a %d-node %d-link graph",
			fib.NumNodes(), fib.NumLinks(), p.Graph().NumNodes(), p.Graph().NumLinks())
	}
	if fib.Variant() != p.Variant() {
		return nil, fmt.Errorf("dataplane: FIB variant %v ≠ protocol variant %v", fib.Variant(), p.Variant())
	}
	return &Recompiler{
		variant:   p.Variant(),
		quantised: p.Quantiser() != nil,
		disc:      p.Routes().DiscriminatorKind(),
		g:         p.Graph(),
		sys:       p.System(),
		tbl:       p.Routes(),
		quant:     quant,
		fib:       fib,
	}, nil
}

// Graph returns the current (post-latest-Apply) topology.
func (r *Recompiler) Graph() *graph.Graph { return r.g }

// FIB returns the current compiled FIB.
func (r *Recompiler) FIB() *FIB { return r.fib }

// Table returns the current routing table.
func (r *Recompiler) Table() *route.Table { return r.tbl }

// System returns the current rotation system.
func (r *Recompiler) System() *rotation.System { return r.sys }

// Quantiser returns the current rank quantiser.
func (r *Recompiler) Quantiser() *core.Quantiser { return r.quant }

// Recompiler and shortest-path-repair metric names.
const (
	MetricRecompileApplies    = "recompile.applies"
	MetricRecompileEdits      = "recompile.edits"
	MetricRecompileDirtyDests = "recompile.dirty_dests"
	MetricRecompileFullDests  = "recompile.full_dests"
	MetricRecompileCoalesced  = "recompile.coalesced_edits"
	MetricRepairRepaired      = "repair.repaired"
	MetricRepairUnchanged     = "repair.unchanged"
	MetricRepairFullFallback  = "repair.full_fallback"
	MetricRepairNodesTouched  = "repair.nodes_touched"
)

// Register publishes the recompiler's counters into reg as the
// recompile.* and repair.* names, sampled at snapshot time — the
// control plane's contribution to the unified telemetry surface. Apply
// is single-writer, so snapshot-time collection reads a settled state
// between applies. Repair counters are the sum over the worker pool —
// per-destination contributions are the same whatever the partition, so
// the totals are deterministic.
func (r *Recompiler) Register(reg *telemetry.Registry) {
	reg.RegisterCollector(telemetry.CollectorFunc(func(s *telemetry.Snapshot) {
		s.AddCounter(MetricRecompileApplies, uint64(r.stats.applies))
		s.AddCounter(MetricRecompileEdits, uint64(r.stats.edits))
		s.AddCounter(MetricRecompileDirtyDests, uint64(r.stats.dirtyDests))
		s.AddCounter(MetricRecompileFullDests, uint64(r.stats.fullDests))
		s.AddCounter(MetricRecompileCoalesced, uint64(r.stats.coalescedEdits))
		var repaired, unchanged, fullFallback, nodesTouched int64
		for i := range r.reps {
			a, b, c, d := r.reps[i].Counters()
			repaired, unchanged, fullFallback, nodesTouched = repaired+a, unchanged+b, fullFallback+c, nodesTouched+d
		}
		s.AddCounter(MetricRepairRepaired, uint64(repaired))
		s.AddCounter(MetricRepairUnchanged, uint64(unchanged))
		s.AddCounter(MetricRepairFullFallback, uint64(fullFallback))
		s.AddCounter(MetricRepairNodesTouched, uint64(nodesTouched))
	}))
}

// Apply recompiles the network state through an edit set. Edits apply in
// order, each seeing the effect of the ones before it (link references
// follow graph.ApplyEdits semantics). On success the recompiler advances
// to the new state, so successive Applies chain; on error it is
// unchanged.
//
// An empty edit set — or a batch whose net effect is nothing, like an
// add immediately removed — is a no-op: Apply returns a nil Delta and
// nil error without cloning anything, and the recompiler state is
// unchanged. Callers must treat a nil Delta as "nothing to swap".
//
// Batches of two or more edits are first coalesced to their net effect
// (weight last-write-wins, add+remove cancellation) when the reduction
// is provably replay-equivalent — see coalesceEdits; otherwise the
// batch replays edit by edit. Per-destination work (tree repair, full
// Dijkstra, column patching) fans out across workers either way.
func (r *Recompiler) Apply(edits ...graph.Edit) (*Delta, error) {
	if len(edits) == 0 {
		return nil, nil
	}
	root := r.tracer.Start("recompile.apply", 0)
	root.SetAttr(telemetry.AttrCount, int64(len(edits)))
	defer root.End()
	origEdits := len(edits)
	coalesced := 0
	coalesceSpan := r.tracer.Start("recompile.coalesce", root.ID())
	if net, ok := coalesceEdits(r.g, edits); ok {
		coalesced = origEdits - len(net)
		if len(net) == 0 {
			coalesceSpan.End()
			r.stats.applies++
			r.stats.edits += origEdits
			r.stats.coalescedEdits += int64(coalesced)
			return nil, nil
		}
		edits = net
	}
	coalesceSpan.End()
	n := r.g.NumNodes()
	curG := r.g
	trees := make([]*graph.SPTree, n)
	for d := 0; d < n; d++ {
		trees[d] = r.tbl.Tree(graph.NodeID(d))
	}
	// Rotation orders are only materialised when a structural edit
	// actually changes the link set; weight-only applies rebind the
	// existing system for free. Weight edits never touch the orders, so
	// initialising them lazily at the first structural edit is exact.
	var orders [][]graph.LinkID
	ensureOrders := func() {
		if orders != nil {
			return
		}
		orders = make([][]graph.LinkID, n)
		for v := 0; v < n; v++ {
			orders[v] = r.sys.LinkOrder(graph.NodeID(v))
		}
	}
	composed := make([]graph.LinkID, curG.NumLinks())
	for i := range composed {
		composed[i] = graph.LinkID(i)
	}
	dirty := make([]bool, n)
	fullDest := make([]bool, n) // dirty via a structural edit (full Dijkstra already run)
	structural, renumbered := false, false
	// Per-destination work inside each edit writes only that
	// destination's slots (trees[d], dirty[d], fullDest[d]) and each
	// repair/Dijkstra result is canonical in (graph, tree, edit), so the
	// loops fan out over a static partition with bit-identical results
	// at any worker count.
	workers := r.workers
	if workers <= 0 {
		workers = par.Workers(n)
	}
	reps := r.pool(workers)

	for _, e := range edits {
		nextG, m, err := graph.ApplyEdit(curG, e)
		if err != nil {
			return nil, err
		}
		// Weight edits are incremental repairs; structural edits replay
		// the touched destinations from scratch — the spans name which.
		spanName, workerName := "recompile.repair", "recompile.repair.worker"
		if e.Kind != graph.EditWeight {
			spanName, workerName = "recompile.replay", "recompile.replay.worker"
		}
		editSpan := r.tracer.Start(spanName, root.ID())
		obs := r.tracer.RangeObserver(workerName, editSpan.ID())
		switch e.Kind {
		case graph.EditWeight:
			oldW := curG.Weight(e.Link)
			par.ForObserved(n, workers, obs, func(w, lo, hi int) {
				rep := &reps[w]
				for d := lo; d < hi; d++ {
					nt, changed := rep.WeightChange(nextG, trees[d], e.Link, oldW)
					if changed {
						dirty[d] = true
						trees[d] = nt
					}
				}
			})
		case graph.EditAddLink:
			structural = true
			ensureOrders()
			w := e.Weight
			par.ForObserved(n, workers, obs, func(_, lo, hi int) {
				for d := lo; d < hi; d++ {
					tr := trees[d]
					da, db := tr.Dist[e.A], tr.Dist[e.B]
					// The new link can only matter where it improves — or
					// ties, flipping a deterministic tie-break — an
					// endpoint's distance; nothing else gains a candidate.
					improves := (!math.IsInf(db, 1) && db+w <= da) ||
						(!math.IsInf(da, 1) && da+w <= db)
					if improves {
						dirty[d], fullDest[d] = true, true
						trees[d] = graph.ShortestPathTree(nextG, graph.NodeID(d), nil)
					}
				}
			})
			orders[e.A] = append(orders[e.A], graph.LinkID(nextG.NumLinks()-1))
			orders[e.B] = append(orders[e.B], graph.LinkID(nextG.NumLinks()-1))
		case graph.EditRemoveLink:
			structural, renumbered = true, true
			ensureOrders()
			link := curG.Link(e.Link)
			par.ForObserved(n, workers, obs, func(_, lo, hi int) {
				for d := lo; d < hi; d++ {
					tr := trees[d]
					// Only an endpoint can have the removed link as its next
					// hop; every path over the link goes through one that
					// does. Unaffected trees survive with their link IDs
					// shifted.
					if tr.NextLink[link.A] == e.Link || tr.NextLink[link.B] == e.Link {
						dirty[d], fullDest[d] = true, true
						trees[d] = graph.ShortestPathTree(nextG, graph.NodeID(d), nil)
					} else {
						trees[d] = graph.RemapTreeLinks(tr, m)
					}
				}
			})
			for v := 0; v < n; v++ {
				kept := orders[v][:0]
				for _, l := range orders[v] {
					if nl := m[l]; nl != graph.NoLink {
						kept = append(kept, nl)
					}
				}
				orders[v] = kept
			}
		}
		for i, old := range composed {
			if old != graph.NoLink {
				composed[i] = m[old]
			}
		}
		curG = nextG
		editSpan.End()
	}

	rebuildSpan := r.tracer.Start("recompile.rebuild", root.ID())
	var sys *rotation.System
	var err error
	if structural {
		sys, err = rotation.FromLinkOrders(curG, orders)
	} else {
		sys, err = r.sys.Rebind(curG)
	}
	if err != nil {
		return nil, fmt.Errorf("dataplane: recompiled rotation invalid: %w", err)
	}
	tbl, err := route.NewFromTrees(curG, r.disc, trees)
	if err != nil {
		return nil, err
	}

	// Re-rank only destinations whose discriminator column moved: a
	// repaired tree with identical hop counts (or path costs, for
	// weight-sum discriminators) keeps its exact rank column.
	var dirtyList, rerank []graph.NodeID
	reranked := make([]bool, n)
	for d := 0; d < n; d++ {
		if !dirty[d] {
			continue
		}
		dst := graph.NodeID(d)
		dirtyList = append(dirtyList, dst)
		if fullDest[d] {
			r.stats.fullDests++
		}
		if r.ddColumnChanged(r.tbl.Tree(dst), trees[d]) {
			rerank = append(rerank, dst)
			reranked[d] = true
		}
	}
	quant := r.quant.Rebuild(tbl, rerank)
	if !header.FitsFlowLabel(quant.Bits()) {
		return nil, fmt.Errorf("dataplane: quantised DD needs %d bits; flow label carries %d",
			quant.Bits(), header.FlowLabelDDBits)
	}
	rebuildSpan.End()

	patchSpan := r.tracer.Start("recompile.patch", root.ID())
	patchSpan.SetAttr(telemetry.AttrCount, int64(len(dirtyList)))
	fib := r.fib.cloneFor(curG.NumLinks(), structural, !structural && len(rerank) == 0)
	if structural {
		fib.fillDarts(sys)
	}
	if renumbered {
		fib.remapDarts(composed, dirty)
	}
	fib.ddBits = quant.Bits()
	fib.codec = CodecFor(fib.ddBits)
	// Dirty columns are disjoint (one pointer-table stripe or dense
	// stride per destination), so the patch pass fans out too.
	par.ForObserved(len(dirtyList), workers, r.tracer.RangeObserver("recompile.patch.worker", patchSpan.ID()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := dirtyList[i]
			switch {
			case structural:
				fib.fillDest(dst, tbl, sys, quant, r.quantised)
			case reranked[dst]:
				fib.patchNextDarts(dst, r.tbl.Tree(dst), trees[dst], sys)
				fib.fillDDColumn(dst, trees[dst], quant, r.quantised, r.disc == route.HopCount)
			default:
				// Unchanged discriminator column ⇒ the dd and ddQ entries are
				// bit-identical already; only the moved next hops need
				// rewriting.
				fib.patchNextDarts(dst, r.tbl.Tree(dst), trees[dst], sys)
			}
		}
	})
	patchSpan.End()

	var pq *core.Quantiser
	if r.quantised {
		pq = quant
	}
	p, err := core.NewWithQuantiser(curG, sys, tbl, core.Config{Variant: r.variant, Quantise: r.quantised}, pq)
	if err != nil {
		return nil, err
	}

	r.stats.applies++
	r.stats.edits += origEdits
	r.stats.coalescedEdits += int64(coalesced)
	r.stats.dirtyDests += int64(len(dirtyList))
	r.g, r.sys, r.tbl, r.quant, r.fib = curG, sys, tbl, quant, fib
	return &Delta{
		Graph:      curG,
		System:     sys,
		Table:      tbl,
		Quantiser:  quant,
		FIB:        fib,
		Protocol:   p,
		LinkMap:    composed,
		Dirty:      dirtyList,
		Structural: structural,
	}, nil
}

// ddColumnChanged reports whether a repaired tree's discriminator column
// differs from the old tree's — hop counts for HopCount tables, path
// costs (bit-compared) for WeightSum.
func (r *Recompiler) ddColumnChanged(old, nt *graph.SPTree) bool {
	if old == nt {
		return false
	}
	if r.disc == route.HopCount {
		if graph.SharedHops(old, nt) {
			return false
		}
		for v := range nt.Hops {
			if nt.Hops[v] != old.Hops[v] {
				return true
			}
		}
		return false
	}
	if graph.SharedDist(old, nt) {
		return false
	}
	for v := range nt.Dist {
		if math.Float64bits(nt.Dist[v]) != math.Float64bits(old.Dist[v]) {
			return true
		}
	}
	return false
}

// patchNextDarts rewrites only the nextDart entries a repaired tree
// actually moved. It is only sound when the destination's discriminator
// column is proven unchanged (ddColumnChanged false) and the dart space
// is intact: then dd and ddQ are bit-identical by construction. In
// shared-column mode this is the copy-on-write seam: only the pages
// containing moved entries get private copies; every other page of the
// column stays shared with the pre-edit FIB.
func (f *FIB) patchNextDarts(dst graph.NodeID, old, nt *graph.SPTree, sys *rotation.System) {
	if graph.SharedNextLink(old, nt) {
		return
	}
	n := f.numNodes
	if pg := f.pages; pg != nil {
		private := make([]bool, pg.perCol)
		for node := 0; node < n; node++ {
			if old.NextLink[node] == nt.NextLink[node] {
				continue
			}
			pi := node >> pg.pageBits
			slot := int(dst)*pg.perCol + pi
			if !private[pi] {
				pg.nd[slot] = append([]int32(nil), pg.nd[slot]...)
				private[pi] = true
			}
			if link := nt.NextLink[node]; link == graph.NoLink {
				pg.nd[slot][node&pg.pageMask] = -1
			} else {
				pg.nd[slot][node&pg.pageMask] = int32(sys.OutgoingDart(graph.NodeID(node), link))
			}
		}
		return
	}
	for node := 0; node < n; node++ {
		if old.NextLink[node] == nt.NextLink[node] {
			continue
		}
		idx := node*n + int(dst)
		if link := nt.NextLink[node]; link == graph.NoLink {
			f.nextDart[idx] = -1
		} else {
			f.nextDart[idx] = int32(sys.OutgoingDart(graph.NodeID(node), link))
		}
	}
}

// fillDDColumn rewrites destination dst's dd/ddQ entries straight from
// the repaired tree and the re-ranked quantiser column — the fast form
// of fillDest for non-structural deltas, paired with patchNextDarts. A
// negative hop count is the tree's unreachable marker, exactly mirroring
// route.Table.Reachable.
func (f *FIB) fillDDColumn(dst graph.NodeID, tree *graph.SPTree, quant *core.Quantiser, quantised, hopDisc bool) {
	n := f.numNodes
	if pg := f.pages; pg != nil {
		// Re-ranked column: rewrite it as fresh private pages. The raw
		// dd pages only exist for non-quantised weight sums (every other
		// mode derives dd from the rank), so their value is tree.Dist.
		ddq := make([]uint16, n)
		var dd []float64
		if pg.dd != nil {
			dd = make([]float64, n)
		}
		for node := 0; node < n; node++ {
			ddq[node] = rank16(quant.Rank(graph.NodeID(node), dst))
			if dd != nil {
				if tree.Hops[node] < 0 {
					dd[node] = math.Inf(1)
				} else {
					dd[node] = tree.Dist[node]
				}
			}
		}
		pg.adoptColumn(int(dst), n, nil, ddq, dd)
		return
	}
	for node := 0; node < n; node++ {
		idx := node*n + int(dst)
		rank := quant.Rank(graph.NodeID(node), dst)
		f.ddQ[idx] = rank
		switch {
		case tree.Hops[node] < 0:
			f.dd[idx] = math.Inf(1)
		case quantised:
			f.dd[idx] = float64(rank)
		case hopDisc:
			f.dd[idx] = float64(tree.Hops[node])
		default:
			f.dd[idx] = tree.Dist[node]
		}
	}
}

// remapDarts rewrites the clean destinations' nextDart entries through a
// link-ID mapping after a structural edit renumbered the dart space.
// Dirty columns are skipped — fillDest rewrites them from scratch. In
// shared-column mode each distinct page is remapped once and the result
// re-shared across every slot that pointed at it, so the renumbered FIB
// keeps the original's dedup factor; pages the map leaves untouched
// keep aliasing the pre-edit FIB's pages.
func (f *FIB) remapDarts(linkMap []graph.LinkID, dirty []bool) {
	n := f.numNodes
	if pg := f.pages; pg != nil {
		seen := make(map[*int32][]int32)
		for dst := 0; dst < n; dst++ {
			if dirty[dst] {
				continue
			}
			base := dst * pg.perCol
			for pi := 0; pi < pg.perCol; pi++ {
				old := pg.nd[base+pi]
				if len(old) == 0 {
					continue
				}
				np, ok := seen[&old[0]]
				if !ok {
					np = remapDartPage(old, linkMap)
					seen[&old[0]] = np
				}
				pg.nd[base+pi] = np
			}
		}
		return
	}
	for dst := 0; dst < n; dst++ {
		if dirty[dst] {
			continue
		}
		for node := 0; node < n; node++ {
			idx := node*n + dst
			d := f.nextDart[idx]
			if d < 0 {
				continue
			}
			nl := linkMap[d>>1]
			if nl == graph.NoLink {
				// A clean tree cannot route over a removed link; guarded
				// for defence in depth.
				f.nextDart[idx] = -1
				continue
			}
			f.nextDart[idx] = int32(nl)<<1 | d&1
		}
	}
}

// remapDartPage maps one next-dart page through a link renumbering,
// returning the original page untouched (preserving sharing with the
// pre-edit FIB) when no entry changes.
func remapDartPage(page []int32, linkMap []graph.LinkID) []int32 {
	np := page
	copied := false
	for i, d := range page {
		if d < 0 {
			continue
		}
		v := int32(-1)
		if nl := linkMap[d>>1]; nl != graph.NoLink {
			v = int32(nl)<<1 | d&1
		}
		if v != d {
			if !copied {
				np = append([]int32(nil), page...)
				copied = true
			}
			np[i] = v
		}
	}
	return np
}
