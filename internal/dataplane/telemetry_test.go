package dataplane_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/telemetry"
)

// TestEngineMetricsAccountExactly runs a metered engine over a known
// workload and checks the registry tells the same story the engine's own
// accounting does: decided/batches totals, the per-event breakdown
// summing back to the packet count, the batch-latency histogram seeing
// every batch, and the queue-depth gauge reading 0 once drained.
func TestEngineMetricsAccountExactly(t *testing.T) {
	fib, g, sys := engineFixture(t)
	reg := telemetry.NewRegistry()
	free := make(chan *dataplane.Batch, 64)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards:  2,
		OnDone:  func(b *dataplane.Batch) { free <- b },
		Metrics: reg,
	})
	eng.SetLink(0, true) // exercise detect/cycle branches too

	const batches = 40
	const batchSize = 256
	pool := make([]*dataplane.Batch, 8)
	for i := range pool {
		pool[i] = &dataplane.Batch{Pkts: benchWorkload(g, sys, int64(i+1))[:batchSize]}
		free <- pool[i]
	}
	for i := 0; i < batches; i++ {
		b := <-free
		for !eng.Submit(b) {
		}
	}
	decided := eng.Close()

	s := reg.Snapshot()
	if got := s.Counter(dataplane.MetricDecided); got != decided {
		t.Fatalf("engine.decided = %d, engine accounted %d", got, decided)
	}
	if got := s.Counter(dataplane.MetricBatches); got != batches {
		t.Fatalf("engine.batches = %d, want %d", got, batches)
	}
	evSum := s.Counter(dataplane.MetricEventRoute) +
		s.Counter(dataplane.MetricEventDetect) +
		s.Counter(dataplane.MetricEventCycle) +
		s.Counter(dataplane.MetricEventContinue) +
		s.Counter(dataplane.MetricEventResume) +
		s.Counter(dataplane.MetricDropNoRoute)
	if evSum != decided {
		t.Fatalf("event breakdown sums to %d, decided %d", evSum, decided)
	}
	if s.Counter(dataplane.MetricEventRoute) == 0 {
		t.Fatal("no routed packets counted — workload broken")
	}
	if s.Counter(dataplane.MetricEventCycle) == 0 {
		t.Fatal("no cycle-following packets counted despite the failed link")
	}
	h := s.Histograms[dataplane.MetricBatchNs]
	if h.Count != batches {
		t.Fatalf("engine.batch_ns saw %d batches, want %d", h.Count, batches)
	}
	if got := s.Gauge(dataplane.MetricQueueDepth); got != 0 {
		t.Fatalf("engine.queue.depth = %d after Close, want 0", got)
	}
}

// TestEngineCloseFlushesPendingCounters is the submit-then-close race:
// producers hammer Submit while Close runs concurrently. Close's leftover
// sweep runs the same instrumented decide path as the workers, so every
// packet the engine reports decided must also be visible in the registry
// — no counter delta may be stranded in a worker's unflushed tally.
func TestEngineCloseFlushesPendingCounters(t *testing.T) {
	fib, g, sys := engineFixture(t)
	for round := 0; round < 8; round++ {
		reg := telemetry.NewRegistry()
		eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
			Shards:  4,
			Metrics: reg,
		})
		eng.SetLink(0, true)

		var submitted atomic.Uint64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; i < 64; i++ {
					b := &dataplane.Batch{Pkts: benchWorkload(g, sys, int64(p*64+i+1))[:32]}
					if !eng.Submit(b) {
						return // engine closed under us: expected
					}
					submitted.Add(uint64(len(b.Pkts)))
				}
			}(p)
		}
		close(start)
		decided := eng.Close()
		wg.Wait()

		if decided != submitted.Load() {
			t.Fatalf("round %d: engine decided %d, accepted submits %d", round, decided, submitted.Load())
		}
		s := reg.Snapshot()
		if got := s.Counter(dataplane.MetricDecided); got != decided {
			t.Fatalf("round %d: engine.decided = %d after Close, engine decided %d — tally stranded",
				round, got, decided)
		}
		evSum := s.Counter(dataplane.MetricEventRoute) +
			s.Counter(dataplane.MetricEventDetect) +
			s.Counter(dataplane.MetricEventCycle) +
			s.Counter(dataplane.MetricEventContinue) +
			s.Counter(dataplane.MetricEventResume) +
			s.Counter(dataplane.MetricDropNoRoute)
		if evSum != decided {
			t.Fatalf("round %d: event counters sum to %d, decided %d", round, evSum, decided)
		}
	}
}

// TestEngineWireMetrics checks the wire-path verdict counters.
func TestEngineWireMetrics(t *testing.T) {
	fib, g, _ := engineFixture(t)
	reg := telemetry.NewRegistry()
	free := make(chan *dataplane.Batch, 8)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards:  1,
		OnDone:  func(b *dataplane.Batch) { free <- b },
		Metrics: reg,
	})
	const frames = 64
	b := &dataplane.Batch{Wire: make([]dataplane.WirePacket, frames)}
	for i := range b.Wire {
		src := graph.NodeID(i % g.NumNodes())
		dst := graph.NodeID((i + 1) % g.NumNodes())
		buf, err := fib.NewWireFrame(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		b.Wire[i] = dataplane.WirePacket{Node: src, Buf: buf}
	}
	for !eng.Submit(b) {
	}
	if got := eng.Close(); got != frames {
		t.Fatalf("decided %d frames, want %d", got, frames)
	}
	s := reg.Snapshot()
	total := s.Counter(dataplane.MetricWireForwarded) + s.Counter(dataplane.MetricWireDropped)
	if total != frames {
		t.Fatalf("wire verdict counters sum to %d, want %d", total, frames)
	}
	if s.Counter(dataplane.MetricWireForwarded) == 0 {
		t.Fatal("no wire frames forwarded")
	}
}
