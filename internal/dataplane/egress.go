package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
)

// Egress is stage three of the engine pipeline (ingest → decide →
// transmit): it receives each decided batch on the deciding worker's
// goroutine, together with the interface-state snapshot the decisions
// were made under, before OnDone sees the batch. Implementations must be
// safe for concurrent calls from every shard and must not retain the
// batch. TxQueue is the built-in implementation; an AF_PACKET/XDP-style
// sink would implement the same interface.
type Egress interface {
	Transmit(b *Batch, st *LinkState)
}

// DartRebinder is implemented by Egress stages whose per-dart state
// must follow structural hot-swaps. Engine.SwapFIB calls RebindDarts —
// under its swap lock, before the new (FIB, LinkState) pair publishes —
// with the new dart-space size and the old→new link map
// (graph.NoLink marks removed links; nil means the IDs are unchanged).
// Implementations must tolerate concurrent Transmit/Send calls against
// the old dart space. An Egress that does not implement this interface
// makes structural swaps an error, as before.
type DartRebinder interface {
	RebindDarts(numDarts int, linkMap []graph.LinkID)
}

// TxVerdict classifies the outcome of one transmit attempt.
type TxVerdict uint8

const (
	// TxSent: the packet was serialised onto its egress link.
	TxSent TxVerdict = iota
	// TxDropQueueFull: the per-dart transmit queue exceeded its bound —
	// the engine is offered more than the link drains.
	TxDropQueueFull
	// TxDropLinkDown: the egress link is marked down in the snapshot the
	// batch was decided under (a failure detected between decision and
	// transmit, or a caller replaying stale decisions).
	TxDropLinkDown
	// TxDropStaleDart: the dart ID does not exist in the queue's current
	// dart space — a decision made under a FIB whose link set a
	// structural hot-swap has since replaced. Counted, never a panic.
	TxDropStaleDart
)

// String names the verdict.
func (v TxVerdict) String() string {
	switch v {
	case TxSent:
		return "sent"
	case TxDropQueueFull:
		return "drop-queue-full"
	case TxDropLinkDown:
		return "drop-link-down"
	case TxDropStaleDart:
		return "drop-stale-dart"
	}
	return fmt.Sprintf("TxVerdict(%d)", uint8(v))
}

// TxConfig parameterises NewTxQueue.
type TxConfig struct {
	// BandwidthBps is the serialisation rate of every link direction
	// (default 9.953 Gb/s, an OC-192 — the simulator's default).
	BandwidthBps float64
	// MaxBacklog bounds each dart's queue as the maximum queueing delay a
	// packet may be enqueued behind (default 10 ms; at OC-192 that is a
	// ≈12 MB buffer). Packets arriving at a fuller queue are dropped with
	// TxDropQueueFull.
	MaxBacklog time.Duration
	// DefaultBits sizes abstract packets whose Bits field is zero
	// (default 8192 = 1 kB, the paper's average packet size). Wire frames
	// are sized from their IP total-length field instead.
	DefaultBits int
	// Now is the transmit clock, an offset from some fixed origin.
	// Defaults to wall time since NewTxQueue; tests inject a virtual
	// clock for deterministic pacing.
	Now func() time.Duration
	// Metrics, when non-nil, publishes transmit telemetry into the
	// registry: the tx.* counters (collected from the per-dart state at
	// snapshot time, so the Send hot path stays untouched) and a
	// tx.queue_wait_ns histogram of the queueing delay each sent packet
	// paid behind its link's serialiser.
	Metrics *telemetry.Registry
}

// Transmit metric names.
const (
	MetricTxSent          = "tx.sent"
	MetricTxSentBits      = "tx.sent_bits"
	MetricTxDropQueueFull = "tx.drop.queue-full"
	MetricTxDropLinkDown  = "tx.drop.link-down"
	MetricTxDropStaleDart = "tx.drop.stale-dart"
	MetricTxQueueWaitNs   = "tx.queue_wait_ns"
)

// TxDropped sums the three tx.drop.* counters of a registry snapshot —
// the egress account lives under the tx.* names (TxConfig.Metrics),
// coherent with the engine and simulator counters.
func TxDropped(s *telemetry.Snapshot) uint64 {
	return s.Counter(MetricTxDropQueueFull) + s.Counter(MetricTxDropLinkDown) + s.Counter(MetricTxDropStaleDart)
}

// txTotals is the summed per-dart transmit account, collected into the
// registry at snapshot time.
type txTotals struct {
	sent, sentBits, dropFull, dropDown, dropStale uint64
}

// TxQueue is the engine's built-in Egress: one bounded, link-rate-paced
// transmit queue per dart (link direction), mirroring the simulator's
// linkFree serialisation model. Each dart keeps a virtual
// transmitter-idle instant; a packet starts serialising at
// max(now, free) and advances free by its serialisation time, so
// packets on one dart depart strictly in the order they were handed in
// — per-dart FIFO link-order delivery — while different darts proceed
// independently. A packet that would wait longer than MaxBacklog is
// dropped and counted, never silently discarded.
//
// The hot path takes one per-dart mutex, does integer/float arithmetic
// and allocates nothing; contention is per link direction, not global,
// so shards transmitting onto different links never serialise against
// each other.
//
// The dart slice lives behind an atomically swapped generation pointer
// so RebindDarts (structural hot-swaps) can replace the dart space
// while shards are mid-Transmit: a send that loads the old generation
// finishes against it, retired generations are retained for the totals, and
// a dart outside the current space is a counted TxDropStaleDart, never
// an index panic.
type TxQueue struct {
	bandwidth   float64
	maxBacklog  time.Duration
	defaultBits int64
	now         func() time.Duration
	wait        *telemetry.Histogram // nil when uninstrumented
	cur         atomic.Pointer[txGen]
	rebindMu    sync.Mutex // serialises RebindDarts; guards retired
	retired     []*txGen
	dropStale   atomic.Uint64
}

// txGen is one generation of the dart space: the per-dart transmit
// state alive between two structural rebinds.
type txGen struct {
	darts []txDart
}

// txDart is one link direction's transmit state, padded so neighbouring
// darts' counters do not false-share cache lines.
type txDart struct {
	mu   sync.Mutex
	free time.Duration // virtual instant the transmitter goes idle
	// counters, updated under mu
	sent, sentBits, dropFull, dropDown uint64
	_                                  [64]byte
}

// NewTxQueue builds transmit queues for a FIB's 2×NumLinks darts.
func NewTxQueue(fib *FIB, cfg TxConfig) *TxQueue {
	return NewTxQueueDarts(2*fib.NumLinks(), cfg)
}

// NewTxQueueDarts is NewTxQueue for an explicit dart count.
func NewTxQueueDarts(numDarts int, cfg TxConfig) *TxQueue {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 9.953e9
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 10 * time.Millisecond
	}
	if cfg.DefaultBits <= 0 {
		cfg.DefaultBits = 8192
	}
	q := &TxQueue{
		bandwidth:   cfg.BandwidthBps,
		maxBacklog:  cfg.MaxBacklog,
		defaultBits: int64(cfg.DefaultBits),
		now:         cfg.Now,
	}
	q.cur.Store(&txGen{darts: make([]txDart, numDarts)})
	if q.now == nil {
		start := time.Now()
		q.now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Metrics != nil {
		// 1 µs .. ~1 s queue-wait buckets; a zero wait (idle link) lands
		// in the first.
		q.wait = cfg.Metrics.Histogram(MetricTxQueueWaitNs, telemetry.ExponentialBuckets(1000, 4, 10))
		// Accumulate, don't set: several TxQueues can share a registry
		// (an engine rebuild, a soak restart), and each must contribute
		// its totals instead of overwriting the previous collector's.
		cfg.Metrics.RegisterCollector(telemetry.CollectorFunc(func(s *telemetry.Snapshot) {
			st := q.totals()
			s.AddCounter(MetricTxSent, st.sent)
			s.AddCounter(MetricTxSentBits, st.sentBits)
			s.AddCounter(MetricTxDropQueueFull, st.dropFull)
			s.AddCounter(MetricTxDropLinkDown, st.dropDown)
			s.AddCounter(MetricTxDropStaleDart, st.dropStale)
		}))
	}
	return q
}

// Transmit implements Egress: every successfully decided packet in the
// batch is handed to its egress dart's queue. Packets the FIB delivered
// locally or refused (OK false / a non-forward wire verdict) never reach
// a transmitter and are not counted here.
func (q *TxQueue) Transmit(b *Batch, st *LinkState) {
	for i := range b.Pkts {
		p := &b.Pkts[i]
		if !p.OK {
			continue
		}
		bits := int64(p.Bits)
		if bits == 0 {
			bits = q.defaultBits
		}
		q.Send(p.Egress, bits, st)
	}
	for i := range b.Wire {
		p := &b.Wire[i]
		if p.Verdict != WireForward {
			continue
		}
		q.Send(p.Egress, wireFrameBits(p.Buf), st)
	}
}

// Send queues one packet of the given size onto dart d, returning the
// transmit verdict. It is the single-packet core of Transmit, exported
// for callers that pace individual packets (the simulator bridge,
// tests).
func (q *TxQueue) Send(d rotation.DartID, bits int64, st *LinkState) TxVerdict {
	gen := q.cur.Load()
	if d < 0 || int(d) >= len(gen.darts) {
		q.dropStale.Add(1)
		return TxDropStaleDart
	}
	dq := &gen.darts[d]
	tx := time.Duration(float64(bits) / q.bandwidth * float64(time.Second))
	now := q.now()
	dq.mu.Lock()
	if st != nil && st.Down(rotation.LinkOf(d)) {
		dq.dropDown++
		dq.mu.Unlock()
		return TxDropLinkDown
	}
	start := now
	if dq.free > start {
		start = dq.free
	}
	if start-now > q.maxBacklog {
		dq.dropFull++
		dq.mu.Unlock()
		return TxDropQueueFull
	}
	dq.free = start + tx
	dq.sent++
	dq.sentBits += uint64(bits)
	dq.mu.Unlock()
	if q.wait != nil {
		q.wait.Observe(int64(start - now))
	}
	return TxSent
}

// Backlog returns dart d's current queueing delay: how long a packet
// handed in now would wait before its first bit serialises. A dart
// outside the current dart space has no queue and reports zero.
func (q *TxQueue) Backlog(d rotation.DartID) time.Duration {
	gen := q.cur.Load()
	if d < 0 || int(d) >= len(gen.darts) {
		return 0
	}
	dq := &gen.darts[d]
	now := q.now()
	dq.mu.Lock()
	free := dq.free
	dq.mu.Unlock()
	if free <= now {
		return 0
	}
	return free - now
}

// NumDarts returns the size of the current dart space.
func (q *TxQueue) NumDarts() int { return len(q.cur.Load().darts) }

// SampleBacklog observes every dart's instantaneous queueing delay into
// a histogram per dart class — forward darts (even IDs, the link's
// tail→head direction) and reverse darts (odd IDs) — and returns each
// class's maximum this sample. Either histogram may be nil (that class
// is then only maxed, not binned). One scan under the per-dart mutexes,
// meant to be called at flush cadence, never per packet; the sampled
// distribution is the queue-sizing telemetry a single peak gauge hides.
func (q *TxQueue) SampleBacklog(fwd, rev *telemetry.Histogram) (maxFwd, maxRev time.Duration) {
	gen := q.cur.Load()
	now := q.now()
	for i := range gen.darts {
		dq := &gen.darts[i]
		dq.mu.Lock()
		free := dq.free
		dq.mu.Unlock()
		b := free - now
		if b < 0 {
			b = 0
		}
		if i&1 == 0 {
			if fwd != nil {
				fwd.Observe(int64(b))
			}
			if b > maxFwd {
				maxFwd = b
			}
		} else {
			if rev != nil {
				rev.Observe(int64(b))
			}
			if b > maxRev {
				maxRev = b
			}
		}
	}
	return maxFwd, maxRev
}

// MaxBacklog returns the largest per-dart queueing delay across the
// current dart space — the queue-depth headline a soak run watches.
func (q *TxQueue) MaxBacklog() time.Duration {
	gen := q.cur.Load()
	now := q.now()
	var max time.Duration
	for i := range gen.darts {
		dq := &gen.darts[i]
		dq.mu.Lock()
		free := dq.free
		dq.mu.Unlock()
		if b := free - now; b > max {
			max = b
		}
	}
	return max
}

// RebindDarts implements DartRebinder: it replaces the dart space for a
// structural hot-swap. linkMap maps old link IDs to new ones
// (graph.NoLink for removed links; nil means identity), exactly the map
// Engine.SwapFIB validates — surviving links carry their pacing clocks
// (free instants) into the new generation, so an in-flight queue keeps
// draining at the link rate instead of resetting to idle. The old
// generation is retired, not discarded: its counters stay in Stats, and
// a shard still transmitting against it finishes harmlessly (its counts
// land in the retired generation).
func (q *TxQueue) RebindDarts(numDarts int, linkMap []graph.LinkID) {
	q.rebindMu.Lock()
	defer q.rebindMu.Unlock()
	old := q.cur.Load()
	next := &txGen{darts: make([]txDart, numDarts)}
	carry := func(oldDart, newDart int) {
		if oldDart >= len(old.darts) || newDart >= numDarts {
			return
		}
		od := &old.darts[oldDart]
		od.mu.Lock()
		free := od.free
		od.mu.Unlock()
		next.darts[newDart].free = free
	}
	if linkMap == nil {
		n := len(old.darts)
		if numDarts < n {
			n = numDarts
		}
		for d := 0; d < n; d++ {
			carry(d, d)
		}
	} else {
		for l, nl := range linkMap {
			if nl == graph.NoLink {
				continue
			}
			carry(2*l, 2*int(nl))
			carry(2*l+1, 2*int(nl)+1)
		}
	}
	q.cur.Store(next)
	q.retired = append(q.retired, old)
}

// totals sums transmit outcomes across all darts, including retired
// generations (dart spaces replaced by RebindDarts): nothing a send
// ever counted is lost to a structural swap.
func (q *TxQueue) totals() txTotals {
	q.rebindMu.Lock()
	gens := make([]*txGen, 0, 1+len(q.retired))
	gens = append(gens, q.cur.Load())
	gens = append(gens, q.retired...)
	q.rebindMu.Unlock()
	var s txTotals
	for _, g := range gens {
		for i := range g.darts {
			dq := &g.darts[i]
			dq.mu.Lock()
			s.sent += dq.sent
			s.sentBits += dq.sentBits
			s.dropFull += dq.dropFull
			s.dropDown += dq.dropDown
			dq.mu.Unlock()
		}
	}
	s.dropStale = q.dropStale.Load()
	return s
}

// wireFrameBits sizes a raw frame from its IP total-length field (IPv4
// bytes 2–3; IPv6 fixed header plus payload length), falling back to the
// buffer length for anything unparseable. The length field is
// attacker/corruption-controlled, so it is clamped to
// [8×header-min, 8×len(buf)]: an inflated claim cannot pace the link as
// if megabytes were serialised, and a zero or runt claim cannot
// serialise for free.
func wireFrameBits(buf []byte) int64 {
	max := 8 * int64(len(buf))
	if len(buf) >= 20 && buf[0]>>4 == 4 {
		return clampBits(8*int64(uint16(buf[2])<<8|uint16(buf[3])), 8*20, max)
	}
	if len(buf) >= 40 && buf[0]>>4 == 6 {
		return clampBits(8*(40+int64(uint16(buf[4])<<8|uint16(buf[5]))), 8*40, max)
	}
	return max
}

// clampBits bounds a claimed frame size to [min, max].
func clampBits(bits, min, max int64) int64 {
	if bits < min {
		return min
	}
	if bits > max {
		return max
	}
	return bits
}
