package dataplane

import (
	"fmt"
	"math"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
)

// ddUnencodable marks a quantised discriminator that does not fit the
// DSCP pool-2 DD field (non-integral or larger than header.MaxDD). The
// wire path drops rather than truncates, mirroring header.EncodeDSCP.
const ddUnencodable = 0xFF

// FIB is the compiled forwarding state of one PR network: every lookup
// core.Protocol performs through route.Table and rotation.System methods
// flattened into dense arrays indexed by node, destination and dart. A
// decision is a handful of array indexings and allocates nothing; Decide
// is bit-identical to core.Protocol.Decide (see the differential test).
//
// A FIB is immutable after Compile and safe for concurrent use by any
// number of forwarding goroutines.
type FIB struct {
	variant  core.Variant
	numNodes int
	numLinks int

	// nextDart[node*numNodes+dst] is the shortest-path egress dart from
	// node toward dst, -1 at the destination or when unreachable.
	nextDart []int32
	// dd[node*numNodes+dst] is the exact distance discriminator
	// (route.Table.DD), +Inf for unreachable pairs. Kept exact so
	// decisions match core bit for bit; the wire path uses ddQ.
	dd []float64
	// ddQ is dd quantised to the DSCP pool-2 field width, ddUnencodable
	// when it does not fit.
	ddQ []uint8
	// faceNext[d] is φ(d), the cycle-following successor of dart d.
	faceNext []int32
	// sigma[d] is σ(d), the complementary-cycle egress for a failed dart.
	sigma []int32
	// head[d] is the node dart d points at.
	head []int32
}

// Compile flattens a core.Protocol into a FIB. It is the offline step the
// paper assigns to the designated server (§4.3): run once per topology
// change, never at failure time.
func Compile(p *core.Protocol) (*FIB, error) {
	if p == nil {
		return nil, fmt.Errorf("dataplane: nil protocol")
	}
	g := p.Graph()
	sys := p.System()
	tbl := p.Routes()
	n := g.NumNodes()
	m := g.NumLinks()
	f := &FIB{
		variant:  p.Variant(),
		numNodes: n,
		numLinks: m,
		nextDart: make([]int32, n*n),
		dd:       make([]float64, n*n),
		ddQ:      make([]uint8, n*n),
		faceNext: make([]int32, 2*m),
		sigma:    make([]int32, 2*m),
		head:     make([]int32, 2*m),
	}
	for node := 0; node < n; node++ {
		for dst := 0; dst < n; dst++ {
			idx := node*n + dst
			link := tbl.NextLink(graph.NodeID(node), graph.NodeID(dst))
			if link == graph.NoLink {
				f.nextDart[idx] = -1
			} else {
				f.nextDart[idx] = int32(sys.OutgoingDart(graph.NodeID(node), link))
			}
			if !tbl.Reachable(graph.NodeID(node), graph.NodeID(dst)) {
				f.dd[idx] = math.Inf(1)
				f.ddQ[idx] = ddUnencodable
				continue
			}
			dd := tbl.DD(graph.NodeID(node), graph.NodeID(dst))
			f.dd[idx] = dd
			if dd >= 0 && dd <= header.MaxDD && dd == math.Trunc(dd) {
				f.ddQ[idx] = uint8(dd)
			} else {
				f.ddQ[idx] = ddUnencodable
			}
		}
	}
	for d := 0; d < 2*m; d++ {
		id := rotation.DartID(d)
		f.faceNext[d] = int32(sys.FaceNext(id))
		f.sigma[d] = int32(sys.Complementary(id))
		f.head[d] = int32(sys.Dart(id).Head)
	}
	return f, nil
}

// Variant returns the compiled termination variant.
func (f *FIB) Variant() core.Variant { return f.variant }

// NumNodes returns the node count the FIB was compiled for.
func (f *FIB) NumNodes() int { return f.numNodes }

// NumLinks returns the link count the FIB was compiled for.
func (f *FIB) NumLinks() int { return f.numLinks }

// Head returns the node dart d points at.
func (f *FIB) Head(d rotation.DartID) graph.NodeID { return graph.NodeID(f.head[d]) }

// WireDD returns the quantised discriminator the wire path stamps for
// (node, dst), or ok=false when it does not fit the DSCP pool-2 field.
func (f *FIB) WireDD(node, dst graph.NodeID) (uint8, bool) {
	q := f.ddQ[int(node)*f.numNodes+int(dst)]
	return q, q != ddUnencodable
}

// Decide performs one forwarding decision on the compiled tables:
// bit-identical to core.Protocol.Decide with the same arguments (st
// standing in for the failure set), with zero allocations.
func (f *FIB) Decide(node, dst graph.NodeID, ingress rotation.DartID, hdr core.Header, st *LinkState) core.Decision {
	if hdr.PR {
		if ingress < 0 {
			// A PR-marked packet with no ingress interface is a protocol
			// impossibility (re-cycling starts at a failure, never at the
			// origin). core treats it as a caller bug and panics; the
			// dataplane faces untrusted wire bytes, so it refuses the
			// packet instead of crashing the engine.
			return core.Decision{Egress: rotation.NoDart, Header: hdr}
		}
		// Cycle following: egress is φ(ingress).
		eg := f.faceNext[ingress]
		if !st.Down(graph.LinkID(eg >> 1)) {
			return core.Decision{Egress: rotation.DartID(eg), Event: core.EventCycle, Header: hdr, OK: true}
		}
		// Failure while cycle following: termination test.
		if f.variant == core.Basic || f.dd[int(node)*f.numNodes+int(dst)] < hdr.DD {
			hdr.PR = false
			d := f.decideSP(node, dst, hdr, st, true)
			if !d.OK {
				return core.Decision{Egress: rotation.NoDart, Header: hdr}
			}
			return d
		}
		if cand, ok := f.firstUp(eg, st); ok {
			return core.Decision{Egress: rotation.DartID(cand), Event: core.EventContinue, Header: hdr, OK: true}
		}
		return core.Decision{Egress: rotation.NoDart, Header: hdr}
	}
	return f.decideSP(node, dst, hdr, st, false)
}

// decideSP is the shortest-path half of the forwarding rule, shared by the
// fresh and resumed (PR bit just cleared) entry points.
func (f *FIB) decideSP(node, dst graph.NodeID, hdr core.Header, st *LinkState, resumed bool) core.Decision {
	idx := int(node)*f.numNodes + int(dst)
	nd := f.nextDart[idx]
	if nd < 0 {
		return core.Decision{Egress: rotation.NoDart, Header: hdr}
	}
	if !st.Down(graph.LinkID(nd >> 1)) {
		ev := core.EventRoute
		if resumed {
			ev = core.EventResume
		}
		return core.Decision{Egress: rotation.DartID(nd), Event: ev, Header: hdr, OK: true}
	}
	// Failure detected on the shortest-path egress: set the PR bit, stamp
	// the discriminator, take the complementary cycle.
	hdr.PR = true
	if f.variant == core.Full {
		hdr.DD = f.dd[idx]
	}
	if eg, ok := f.firstUp(nd, st); ok {
		return core.Decision{Egress: rotation.DartID(eg), Event: core.EventDetect, Header: hdr, OK: true}
	}
	return core.Decision{Egress: rotation.NoDart, Header: hdr}
}

// DecideBatch decides a whole batch in one call, writing each packet's
// Egress, Event, Hdr and OK in place. This is the engine's inner loop:
// the two overwhelmingly common cases — shortest-path forwarding on an up
// link, cycle following on an up link — are decided inline so the per-
// packet cost is a couple of dependent loads, and consecutive packets
// pipeline through the CPU; only failure-touching packets take the full
// Decide path.
func (f *FIB) DecideBatch(pkts []Packet, st *LinkState) {
	for i := range pkts {
		p := &pkts[i]
		if p.Hdr.PR {
			if p.Ingress >= 0 {
				eg := f.faceNext[p.Ingress]
				if !st.Down(graph.LinkID(eg >> 1)) {
					p.Egress, p.Event, p.OK = rotation.DartID(eg), core.EventCycle, true
					continue
				}
			}
		} else {
			nd := f.nextDart[int(p.Node)*f.numNodes+int(p.Dst)]
			if nd >= 0 && !st.Down(graph.LinkID(nd>>1)) {
				p.Egress, p.Event, p.OK = rotation.DartID(nd), core.EventRoute, true
				continue
			}
		}
		d := f.Decide(p.Node, p.Dst, p.Ingress, p.Hdr, st)
		p.Egress, p.Event, p.Hdr, p.OK = d.Egress, d.Event, d.Header, d.OK
	}
}

// firstUp walks σ(d), σ²(d), ... of a failed egress dart until an up link
// is found; ok is false when the rotation wraps with everything failed.
func (f *FIB) firstUp(failed int32, st *LinkState) (int32, bool) {
	for cand := f.sigma[failed]; cand != failed; cand = f.sigma[cand] {
		if !st.Down(graph.LinkID(cand >> 1)) {
			return cand, true
		}
	}
	return -1, false
}
