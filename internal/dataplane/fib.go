package dataplane

import (
	"fmt"
	"math"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/par"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
)

// MetricCompilePhaseNs is the shared-registry histogram of compile
// phase durations (quantiser build, column fill, dart fill) — one
// observation per phase per compile, 10µs…2.6s exponential buckets.
const MetricCompilePhaseNs = "compile.phase_ns"

// compilePhaseBuckets spans 10µs to ~2.6s.
func compilePhaseBuckets() []int64 { return telemetry.ExponentialBuckets(10_000, 4, 10) }

// Codec identifies the wire encoding a compiled network stamps its PR
// marks with, selected by Compile from the quantised DD bit budget.
type Codec uint8

const (
	// CodecDSCP: IPv4 DSCP pool 2, 3 DD bits — the paper's §6 proposal,
	// chosen when every quantised discriminator fits.
	CodecDSCP Codec = iota
	// CodecFlowLabel: IPv6 flow label, 17 DD bits — the escape hatch for
	// larger diameters and weight-sum discriminators.
	CodecFlowLabel
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case CodecDSCP:
		return "dscp"
	case CodecFlowLabel:
		return "flow-label"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// CodecFor returns the wire codec a b-bit quantised discriminator code
// compiles to — the single selection rule Compile, the facade and the
// reporting tools all share.
func CodecFor(bits int) Codec {
	if header.FitsDSCP(bits) {
		return CodecDSCP
	}
	return CodecFlowLabel
}

// FIB is the compiled forwarding state of one PR network: every lookup
// core.Protocol performs through route.Table and rotation.System methods
// flattened into dense arrays indexed by node, destination and dart. A
// decision is a handful of array indexings and allocates nothing; Decide
// is bit-identical to core.Protocol.Decide (see the differential test).
//
// A FIB is immutable after Compile and safe for concurrent use by any
// number of forwarding goroutines.
type FIB struct {
	variant  core.Variant
	numNodes int
	numLinks int

	// nextDart[node*numNodes+dst] is the shortest-path egress dart from
	// node toward dst, -1 at the destination or when unreachable.
	nextDart []int32
	// dd[node*numNodes+dst] is the discriminator in the units the source
	// protocol stamps: the exact route.Table.DD value, or its rank when
	// the protocol was built with core.Config.Quantise — so Decide is bit
	// for bit the protocol's Decide in either mode. +Inf for unreachable
	// pairs. The wire path always uses ddQ.
	dd []float64
	// ddQ is the rank-quantised discriminator (core.Quantiser): a dense
	// order-preserving code the wire codecs can always carry,
	// core.RankUnreachable for unreachable pairs. Rank comparison is
	// exactly equivalent to raw comparison, so the wire path's decisions
	// match Decide's (and therefore core's) on every input.
	ddQ []uint32
	// pages is the shared-column page store when the FIB was compiled
	// with ColumnsShared (dense planes above are nil then): identical
	// page-sized runs of column content interned once and shared across
	// destinations, with uint16 ranks and the dd plane dropped when
	// derivable. See fibpages.go. Every read goes through the
	// ndAt/ddAt/ddqAt accessors, which keep the dense fast path inlined.
	pages *fibPages
	// ddBits is the bit budget of the largest rank; codec is the wire
	// encoding Compile selected from it.
	ddBits int
	codec  Codec
	// faceNext[d] is φ(d), the cycle-following successor of dart d.
	faceNext []int32
	// sigma[d] is σ(d), the complementary-cycle egress for a failed dart.
	sigma []int32
	// head[d] is the node dart d points at.
	head []int32
}

// ColumnMode selects the FIB's column representation.
type ColumnMode uint8

const (
	// ColumnsAuto picks shared pages at sharedAutoMinNodes nodes and up,
	// dense planes below.
	ColumnsAuto ColumnMode = iota
	// ColumnsDense forces the dense n×n planes.
	ColumnsDense
	// ColumnsShared forces the shared-column page representation.
	ColumnsShared
)

// CompileOptions tune how Compile lays out and builds the FIB. The zero
// value is the default: automatic worker fan-out, automatic column mode,
// default page size. Every combination produces a FIB whose decisions —
// and whose per-entry table contents, as read through the accessors —
// are bit-identical; the options trade compile latency and resident
// bytes only.
type CompileOptions struct {
	// Workers caps the per-destination compile fan-out: 0 uses the
	// automatic GOMAXPROCS-based count, 1 forces a sequential build.
	Workers int
	// Columns selects dense planes or shared pages.
	Columns ColumnMode
	// PageSize is the shared-page size in rows (rounded down to a power
	// of two; 0 means the default).
	PageSize int
	// Tracer receives the compile's span tree — a root "compile" span
	// with per-phase children (quantiser build, column fill with one
	// grandchild per fan-out worker, dart fill). Nil traces nothing and
	// costs nothing.
	Tracer *telemetry.Tracer
	// TraceParent parents the compile's root span (0 makes it a root).
	TraceParent telemetry.SpanID
	// Metrics, when set, receives per-phase durations into the
	// MetricCompilePhaseNs histogram.
	Metrics *telemetry.Registry
}

// Compile flattens a core.Protocol into a FIB and selects the wire codec:
// DSCP pool 2 when the rank-quantised discriminators fit its 3 DD bits,
// the IPv6 flow label otherwise. It is the offline step the paper assigns
// to the designated server (§4.3): run once per topology change, never at
// failure time.
func Compile(p *core.Protocol) (*FIB, error) { return CompileWith(p, nil) }

// CompileWith is Compile reusing a prebuilt quantiser over p.Routes()
// (nil builds one), sparing callers that already hold one — like the
// recycle façade — a second O(n² log n) pass and a second n² table.
func CompileWith(p *core.Protocol, quant *core.Quantiser) (*FIB, error) {
	return CompileWithOptions(p, quant, CompileOptions{})
}

// CompileWithOptions is CompileWith with explicit layout and parallelism
// choices. Destination columns are independent — each is a pure function
// of (routing table, rotation system, rank column) — so the fill fans
// out across workers over a static partition; output is bit-identical at
// any worker count.
func CompileWithOptions(p *core.Protocol, quant *core.Quantiser, opts CompileOptions) (*FIB, error) {
	if p == nil {
		return nil, fmt.Errorf("dataplane: nil protocol")
	}
	g := p.Graph()
	sys := p.System()
	tbl := p.Routes()
	n := g.NumNodes()
	m := g.NumLinks()
	// quantised: the protocol itself stamps ranks into Header.DD, so the
	// abstract dd table must hold ranks too or Decide's termination test
	// would compare mismatched units. The protocol's own quantiser wins
	// over the supplied one — they are identical by construction, but the
	// protocol's is the one its walks actually stamp from.
	tr := opts.Tracer
	var phaseHist *telemetry.Histogram
	if opts.Metrics != nil {
		phaseHist = opts.Metrics.Histogram(MetricCompilePhaseNs, compilePhaseBuckets())
	}
	root := tr.Start("compile", opts.TraceParent)
	root.SetAttr(telemetry.AttrNodes, int64(n))
	defer root.End()
	quantised := p.Quantiser() != nil
	if quantised {
		quant = p.Quantiser()
	} else if quant == nil {
		sp, t0 := tr.Start("compile.quantise", root.ID()), time.Now()
		quant = core.BuildQuantiser(tbl)
		sp.End()
		if phaseHist != nil {
			phaseHist.Observe(int64(time.Since(t0)))
		}
	}
	f := &FIB{
		variant:  p.Variant(),
		numNodes: n,
		numLinks: m,
		ddBits:   quant.Bits(),
		faceNext: make([]int32, 2*m),
		sigma:    make([]int32, 2*m),
		head:     make([]int32, 2*m),
	}
	if !header.FitsFlowLabel(f.ddBits) {
		// Unreachable for any graph the 65536-node address plan admits
		// (ranks are < numNodes); kept as a guard for exotic callers.
		return nil, fmt.Errorf("dataplane: quantised DD needs %d bits; flow label carries %d",
			f.ddBits, header.FlowLabelDDBits)
	}
	f.codec = CodecFor(f.ddBits)
	shared := opts.Columns == ColumnsShared ||
		(opts.Columns == ColumnsAuto && n >= sharedAutoMinNodes)
	if n >= 1<<16 {
		// The uint16 rank pages need ranks (< numNodes) below the
		// rank16Unreachable sentinel; beyond the address plan's 65536
		// nodes fall back to dense planes.
		shared = false
	}
	fillSpan, fillT0 := tr.Start("compile.fill", root.ID()), time.Now()
	obs := tr.RangeObserver("compile.fill.worker", fillSpan.ID())
	if shared {
		// Raw dd pages are only needed when the stamp space is neither
		// ranks nor hop counts; otherwise ddAt derives dd from the rank.
		rawDD := !quantised && tbl.DiscriminatorKind() == route.WeightSum
		ps := opts.PageSize
		if ps <= 0 {
			ps = defaultPageSize
		}
		f.pages = newFIBPages(n, ps, rawDD)
		st := newPageStores()
		par.ForObserved(n, opts.Workers, obs, func(_, lo, hi int) {
			sc := newColScratch(n, rawDD)
			for dst := lo; dst < hi; dst++ {
				f.computeColumn(graph.NodeID(dst), tbl, sys, quant, quantised, sc)
				f.pages.setColumn(dst, n, sc, st)
			}
		})
	} else {
		f.nextDart = make([]int32, n*n)
		f.dd = make([]float64, n*n)
		f.ddQ = make([]uint32, n*n)
		par.ForObserved(n, opts.Workers, obs, func(_, lo, hi int) {
			for dst := lo; dst < hi; dst++ {
				f.fillDest(graph.NodeID(dst), tbl, sys, quant, quantised)
			}
		})
	}
	fillSpan.End()
	if phaseHist != nil {
		phaseHist.Observe(int64(time.Since(fillT0)))
	}
	dartSpan, dartT0 := tr.Start("compile.darts", root.ID()), time.Now()
	f.fillDarts(sys)
	dartSpan.End()
	if phaseHist != nil {
		phaseHist.Observe(int64(time.Since(dartT0)))
	}
	return f, nil
}

// fillDest (re)writes destination dst's column of the compiled tables —
// the per-destination unit the full compile and the delta recompiler
// share. The column is a pure function of dst's shortest-path tree and
// rank column, which is what makes per-destination delta patching exact.
// In shared-column mode the column is rebuilt as fresh private pages.
func (f *FIB) fillDest(dst graph.NodeID, tbl *route.Table, sys *rotation.System, quant *core.Quantiser, quantised bool) {
	if f.pages != nil {
		sc := newColScratch(f.numNodes, f.pages.dd != nil)
		f.computeColumn(dst, tbl, sys, quant, quantised, sc)
		f.pages.adoptColumn(int(dst), f.numNodes, sc.nd, sc.ddq, sc.dd)
		return
	}
	n := f.numNodes
	for node := 0; node < n; node++ {
		idx := node*n + int(dst)
		link := tbl.NextLink(graph.NodeID(node), dst)
		if link == graph.NoLink {
			f.nextDart[idx] = -1
		} else {
			f.nextDart[idx] = int32(sys.OutgoingDart(graph.NodeID(node), link))
		}
		rank := quant.Rank(graph.NodeID(node), dst)
		f.ddQ[idx] = rank
		if !tbl.Reachable(graph.NodeID(node), dst) {
			f.dd[idx] = math.Inf(1)
			continue
		}
		if quantised {
			f.dd[idx] = float64(rank)
		} else {
			f.dd[idx] = tbl.DD(graph.NodeID(node), dst)
		}
	}
}

// computeColumn writes destination dst's column into contiguous scratch
// buffers — the shared-column analogue of fillDest's strided writes,
// entry for entry the same values (sc.dd is only kept when the raw
// plane cannot be derived, i.e. non-quantised weight sums).
func (f *FIB) computeColumn(dst graph.NodeID, tbl *route.Table, sys *rotation.System, quant *core.Quantiser, _ bool, sc *colScratch) {
	n := f.numNodes
	for node := 0; node < n; node++ {
		link := tbl.NextLink(graph.NodeID(node), dst)
		if link == graph.NoLink {
			sc.nd[node] = -1
		} else {
			sc.nd[node] = int32(sys.OutgoingDart(graph.NodeID(node), link))
		}
		sc.ddq[node] = rank16(quant.Rank(graph.NodeID(node), dst))
		if sc.dd != nil {
			if !tbl.Reachable(graph.NodeID(node), dst) {
				sc.dd[node] = math.Inf(1)
			} else {
				sc.dd[node] = tbl.DD(graph.NodeID(node), dst)
			}
		}
	}
}

// fillDarts (re)writes the per-dart permutation tables from a rotation
// system.
func (f *FIB) fillDarts(sys *rotation.System) {
	for d := 0; d < 2*f.numLinks; d++ {
		id := rotation.DartID(d)
		f.faceNext[d] = int32(sys.FaceNext(id))
		f.sigma[d] = int32(sys.Complementary(id))
		f.head[d] = int32(sys.Dart(id).Head)
	}
}

// cloneFor returns a copy of f sized for numLinks links for the delta
// recompiler to patch, copying only the planes that can change. The
// next-hop table is always deep-copied; the discriminator planes are
// shared when shareDD is set (no destination re-ranked, so dd and ddQ
// are bit-identical by construction); the dart tables are freshly
// allocated when structural is set — any edit that touched the link set
// invalidates the dart space, even when the count happens to match —
// and shared otherwise. The original stays immutable, which is what
// lets an Engine keep forwarding on it while the copy is being patched.
func (f *FIB) cloneFor(numLinks int, structural, shareDD bool) *FIB {
	c := &FIB{
		variant:  f.variant,
		numNodes: f.numNodes,
		numLinks: numLinks,
		ddBits:   f.ddBits,
		codec:    f.codec,
	}
	if f.pages != nil {
		// Shared columns: copy only the page pointer tables; the patch
		// paths give pages private copies on first write (CoW), so every
		// untouched page stays shared with f.
		c.pages = f.pages.clone(shareDD)
	} else {
		c.nextDart = append([]int32(nil), f.nextDart...)
		if shareDD {
			c.dd, c.ddQ = f.dd, f.ddQ
		} else {
			c.dd = append([]float64(nil), f.dd...)
			c.ddQ = append([]uint32(nil), f.ddQ...)
		}
	}
	if !structural && numLinks == f.numLinks {
		c.faceNext, c.sigma, c.head = f.faceNext, f.sigma, f.head
	} else {
		c.faceNext = make([]int32, 2*numLinks)
		c.sigma = make([]int32, 2*numLinks)
		c.head = make([]int32, 2*numLinks)
	}
	return c
}

// ndAt, ddAt and ddqAt are the only reads of the column planes: the
// dense indexing stays on the inlined fast path (the gated decide
// benchmarks run dense FIBs), the shared-column page walk lives in
// out-of-line fibPages methods. Neither path allocates.

// ndAt returns the shortest-path egress dart entry for (node, dst): -1
// at the destination or when unreachable.
func (f *FIB) ndAt(node, dst int) int32 {
	if f.nextDart != nil {
		return f.nextDart[node*f.numNodes+dst]
	}
	return f.pages.ndAt(node, dst)
}

// ddAt returns the abstract discriminator for (node, dst) in the units
// the source protocol stamps; +Inf when unreachable.
func (f *FIB) ddAt(node, dst int) float64 {
	if f.dd != nil {
		return f.dd[node*f.numNodes+dst]
	}
	return f.pages.ddAt(node, dst)
}

// ddqAt returns the rank-quantised discriminator for (node, dst);
// core.RankUnreachable when unreachable.
func (f *FIB) ddqAt(node, dst int) uint32 {
	if f.ddQ != nil {
		return f.ddQ[node*f.numNodes+dst]
	}
	return f.pages.ddqAt(node, dst)
}

// Variant returns the compiled termination variant.
func (f *FIB) Variant() core.Variant { return f.variant }

// NumNodes returns the node count the FIB was compiled for.
func (f *FIB) NumNodes() int { return f.numNodes }

// NumLinks returns the link count the FIB was compiled for.
func (f *FIB) NumLinks() int { return f.numLinks }

// Head returns the node dart d points at.
func (f *FIB) Head(d rotation.DartID) graph.NodeID { return graph.NodeID(f.head[d]) }

// Codec returns the wire encoding Compile selected for this network.
func (f *FIB) Codec() Codec { return f.codec }

// DDBits returns the bit budget of the quantised discriminator code.
func (f *FIB) DDBits() int { return f.ddBits }

// WireDD returns the quantised discriminator the wire path stamps for
// (node, dst), or ok=false for unreachable pairs. Unlike the raw
// discriminator it always fits the compiled codec.
func (f *FIB) WireDD(node, dst graph.NodeID) (uint32, bool) {
	q := f.ddqAt(int(node), int(dst))
	return q, q != core.RankUnreachable
}

// Decide performs one forwarding decision on the compiled tables:
// bit-identical to core.Protocol.Decide with the same arguments (st
// standing in for the failure set), with zero allocations.
func (f *FIB) Decide(node, dst graph.NodeID, ingress rotation.DartID, hdr core.Header, st *LinkState) core.Decision {
	if hdr.PR {
		if ingress < 0 || int(ingress) >= len(f.faceNext) {
			// A PR-marked packet with no ingress interface is a protocol
			// impossibility (re-cycling starts at a failure, never at the
			// origin). core treats it as a caller bug and panics; the
			// dataplane faces untrusted wire bytes — and, across a
			// structural hot-swap, darts of a retired FIB — so it refuses
			// the packet instead of crashing the engine.
			return core.Decision{Egress: rotation.NoDart, Header: hdr}
		}
		// Cycle following: egress is φ(ingress).
		eg := f.faceNext[ingress]
		if !st.Down(graph.LinkID(eg >> 1)) {
			return core.Decision{Egress: rotation.DartID(eg), Event: core.EventCycle, Header: hdr, OK: true}
		}
		// Failure while cycle following: termination test.
		if f.variant == core.Basic || f.ddAt(int(node), int(dst)) < hdr.DD {
			hdr.PR = false
			d := f.decideSP(node, dst, hdr, st, true)
			if !d.OK {
				return core.Decision{Egress: rotation.NoDart, Header: hdr}
			}
			return d
		}
		if cand, ok := f.firstUp(eg, st); ok {
			return core.Decision{Egress: rotation.DartID(cand), Event: core.EventContinue, Header: hdr, OK: true}
		}
		return core.Decision{Egress: rotation.NoDart, Header: hdr}
	}
	return f.decideSP(node, dst, hdr, st, false)
}

// decideSP is the shortest-path half of the forwarding rule, shared by the
// fresh and resumed (PR bit just cleared) entry points.
func (f *FIB) decideSP(node, dst graph.NodeID, hdr core.Header, st *LinkState, resumed bool) core.Decision {
	nd := f.ndAt(int(node), int(dst))
	if nd < 0 {
		return core.Decision{Egress: rotation.NoDart, Header: hdr}
	}
	if !st.Down(graph.LinkID(nd >> 1)) {
		ev := core.EventRoute
		if resumed {
			ev = core.EventResume
		}
		return core.Decision{Egress: rotation.DartID(nd), Event: ev, Header: hdr, OK: true}
	}
	// Failure detected on the shortest-path egress: set the PR bit, stamp
	// the discriminator, take the complementary cycle.
	hdr.PR = true
	if f.variant == core.Full {
		hdr.DD = f.ddAt(int(node), int(dst))
	}
	if eg, ok := f.firstUp(nd, st); ok {
		return core.Decision{Egress: rotation.DartID(eg), Event: core.EventDetect, Header: hdr, OK: true}
	}
	return core.Decision{Egress: rotation.NoDart, Header: hdr}
}

// decideWire is Decide in rank space: the same forwarding rule with the
// packet's discriminator read and stamped as the quantised code the wire
// codecs carry. Because rank comparison is exactly equivalent to raw
// comparison per destination (core.Quantiser), decideWire chooses the same
// egress dart and event as Decide on every input — proven by the
// wire-vs-walk differential tests.
func (f *FIB) decideWire(node, dst graph.NodeID, ingress rotation.DartID, pr bool, dd uint32, st *LinkState) (egress rotation.DartID, event core.Event, prOut bool, ddOut uint32, ok bool) {
	if pr {
		if ingress < 0 || int(ingress) >= len(f.faceNext) {
			return rotation.NoDart, 0, pr, dd, false
		}
		eg := f.faceNext[ingress]
		if !st.Down(graph.LinkID(eg >> 1)) {
			return rotation.DartID(eg), core.EventCycle, pr, dd, true
		}
		if f.variant == core.Basic || f.ddqAt(int(node), int(dst)) < dd {
			eg, ev, prOut, ddOut, ok := f.decideWireSP(node, dst, false, dd, st, true)
			if !ok {
				return rotation.NoDart, 0, pr, dd, false
			}
			return eg, ev, prOut, ddOut, true
		}
		if cand, up := f.firstUp(eg, st); up {
			return rotation.DartID(cand), core.EventContinue, pr, dd, true
		}
		return rotation.NoDart, 0, pr, dd, false
	}
	return f.decideWireSP(node, dst, pr, dd, st, false)
}

// decideWireSP is decideSP in rank space.
func (f *FIB) decideWireSP(node, dst graph.NodeID, pr bool, dd uint32, st *LinkState, resumed bool) (rotation.DartID, core.Event, bool, uint32, bool) {
	nd := f.ndAt(int(node), int(dst))
	if nd < 0 {
		return rotation.NoDart, 0, pr, dd, false
	}
	if !st.Down(graph.LinkID(nd >> 1)) {
		ev := core.EventRoute
		if resumed {
			ev = core.EventResume
		}
		return rotation.DartID(nd), ev, pr, dd, true
	}
	pr = true
	if f.variant == core.Full {
		dd = f.ddqAt(int(node), int(dst))
	}
	if eg, ok := f.firstUp(nd, st); ok {
		return rotation.DartID(eg), core.EventDetect, pr, dd, true
	}
	return rotation.NoDart, 0, pr, dd, false
}

// DecideBatch decides a whole batch in one call, writing each packet's
// Egress, Event, Hdr and OK in place. This is the engine's inner loop:
// the two overwhelmingly common cases — shortest-path forwarding on an up
// link, cycle following on an up link — are decided inline so the per-
// packet cost is a couple of dependent loads, and consecutive packets
// pipeline through the CPU; only failure-touching packets take the full
// Decide path.
func (f *FIB) DecideBatch(pkts []Packet, st *LinkState) {
	for i := range pkts {
		p := &pkts[i]
		if p.Hdr.PR {
			if p.Ingress >= 0 && int(p.Ingress) < len(f.faceNext) {
				eg := f.faceNext[p.Ingress]
				if !st.Down(graph.LinkID(eg >> 1)) {
					p.Egress, p.Event, p.OK = rotation.DartID(eg), core.EventCycle, true
					continue
				}
			}
		} else {
			nd := f.ndAt(int(p.Node), int(p.Dst))
			if nd >= 0 && !st.Down(graph.LinkID(nd>>1)) {
				p.Egress, p.Event, p.OK = rotation.DartID(nd), core.EventRoute, true
				continue
			}
		}
		d := f.Decide(p.Node, p.Dst, p.Ingress, p.Hdr, st)
		p.Egress, p.Event, p.Hdr, p.OK = d.Egress, d.Event, d.Header, d.OK
	}
}

// DecideBatchTally is DecideBatch with per-event accounting folded in.
// The batch is processed in chunks of two passes: a call-free fast-path
// pass that decides the common cases (counting cycle hits in a register
// and noting misses in a small stack buffer), then a slow pass that runs
// the full Decide only on the misses and tallies their events. Keeping
// the hot loop free of calls lets the counters live in registers — a
// loop-carried counter in DecideBatch's shape would be spilled to the
// stack on every iteration because of the Decide call — and the routed
// total falls out by subtraction, so the dominant path pays nothing.
// The metered engine calls this; the unmetered engine keeps the bare
// DecideBatch.
func (f *FIB) DecideBatchTally(pkts []Packet, st *LinkState, tally *[8]uint64) {
	const chunk = 64
	var miss [chunk]int32
	for base := 0; base < len(pkts); base += chunk {
		end := base + chunk
		if end > len(pkts) {
			end = len(pkts)
		}
		nMiss, nCycle := f.fastPass(pkts[base:end], st, &miss)
		for k := 0; k < nMiss; k++ {
			p := &pkts[base+int(miss[k])]
			d := f.Decide(p.Node, p.Dst, p.Ingress, p.Hdr, st)
			p.Egress, p.Event, p.Hdr, p.OK = d.Egress, d.Event, d.Header, d.OK
			if d.OK {
				// The FIB never emits EventDeliver, so the event is
				// always < 5; the mask only elides the bounds check.
				tally[int(d.Event)&7]++
			} else {
				tally[5]++
			}
		}
		tally[core.EventRoute] += uint64(end-base-nMiss) - nCycle
		tally[core.EventCycle] += nCycle
	}
}

// fastPass decides the call-free fast paths over one chunk, writing miss
// indexes (relative to the chunk) for the packets that need the full
// Decide. It deliberately lives in its own (non-inlined) function: its
// register set must not share the caller's tally pointer and chunk
// bookkeeping, or the counters spill to the stack on every iteration.
//
//go:noinline
func (f *FIB) fastPass(pkts []Packet, st *LinkState, miss *[64]int32) (nMiss int, nCycle uint64) {
	for i := range pkts {
		p := &pkts[i]
		if p.Hdr.PR {
			if p.Ingress >= 0 && int(p.Ingress) < len(f.faceNext) {
				eg := f.faceNext[p.Ingress]
				if !st.Down(graph.LinkID(eg >> 1)) {
					p.Egress, p.Event, p.OK = rotation.DartID(eg), core.EventCycle, true
					nCycle++
					continue
				}
			}
		} else {
			nd := f.ndAt(int(p.Node), int(p.Dst))
			if nd >= 0 && !st.Down(graph.LinkID(nd>>1)) {
				p.Egress, p.Event, p.OK = rotation.DartID(nd), core.EventRoute, true
				continue
			}
		}
		miss[nMiss] = int32(i)
		nMiss++
	}
	return nMiss, nCycle
}

// firstUp walks σ(d), σ²(d), ... of a failed egress dart until an up link
// is found; ok is false when the rotation wraps with everything failed.
func (f *FIB) firstUp(failed int32, st *LinkState) (int32, bool) {
	for cand := f.sigma[failed]; cand != failed; cand = f.sigma[cand] {
		if !st.Down(graph.LinkID(cand >> 1)) {
			return cand, true
		}
	}
	return -1, false
}
