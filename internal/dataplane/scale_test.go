package dataplane

// Scale differentials: the parallel compiler, the shared-column FIB
// layout and the batch coalescer all promise bit-identity with the
// sequential dense baseline. These harnesses hold them to it — every
// (workers, layout) combination against the one-worker dense oracle,
// coalesced Applies against per-edit replay, shared-column recompilation
// against dense across chained structural churn — plus the rand:2000
// memory-ratio and GOMAXPROCS-gated speedup acceptance checks.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// scaleProtocol builds the compile input for one differential case.
func scaleProtocol(t *testing.T, g *graph.Graph, sys *rotation.System, disc route.Discriminator, quantised bool) *core.Protocol {
	t.Helper()
	tbl := route.Build(g, disc)
	p, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: quantised})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallelCompileDifferential: every compile configuration — worker
// counts 1/3/4, dense and shared columns, tiny pages to force page
// boundaries inside columns — produces a FIB entry-identical to the
// sequential dense oracle, over the same 100-graph mix the recompiler
// harness uses plus fixed large-diameter topologies that select the
// flow-label codec.
func TestParallelCompileDifferential(t *testing.T) {
	type tcase struct {
		name      string
		g         *graph.Graph
		sys       *rotation.System
		disc      route.Discriminator
		quantised bool
	}
	var cases []tcase
	for seed := int64(1); seed <= 100; seed++ {
		var g *graph.Graph
		if seed%4 == 0 {
			g = graph.RandomPlanarLike(7+int(seed%8), seed)
		} else {
			n := 6 + int(seed%10)
			g = graph.RandomTwoConnected(n, n+2+int(seed)%n, seed)
		}
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		cases = append(cases, tcase{
			name: testCtx(seed, 0, nil), g: g, sys: rotation.Random(g, seed*13),
			disc: disc, quantised: seed%3 == 0,
		})
	}
	// Large-diameter families push the quantiser past 3 bits, so the
	// flow-label codec's wire planes are covered too; both quantised
	// and raw-discriminator compiles.
	for _, spec := range []string{"chain:8", "wring:24@3"} {
		tp, err := topo.Generated(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []bool{false, true} {
			cases = append(cases, tcase{
				name: spec, g: tp.Graph, sys: tp.Embedding,
				disc: route.WeightSum, quantised: q,
			})
		}
	}
	variants := []CompileOptions{
		{Workers: 4, Columns: ColumnsDense},
		{Workers: 1, Columns: ColumnsShared, PageSize: 8},
		{Workers: 4, Columns: ColumnsShared, PageSize: 8},
		{Workers: 3, Columns: ColumnsShared},
	}
	for _, tc := range cases {
		p := scaleProtocol(t, tc.g, tc.sys, tc.disc, tc.quantised)
		oracle, err := CompileWithOptions(p, nil, CompileOptions{Workers: 1, Columns: ColumnsDense})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range variants {
			got, err := CompileWithOptions(p, nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			ctx := tc.name
			if opt.Columns == ColumnsShared {
				ctx += " shared"
				if !got.SharedColumns() {
					t.Fatalf("%s: ColumnsShared compiled dense", ctx)
				}
			}
			fibsEqual(t, ctx, got, oracle)
		}
	}
}

// TestApplyEmptyNoOp pins the documented contract: an empty edit set is
// a no-op returning a nil delta and nil error, leaving the recompiler
// untouched.
func TestApplyEmptyNoOp(t *testing.T) {
	g := graph.RandomTwoConnected(8, 12, 5)
	p := scaleProtocol(t, g, rotation.Random(g, 7), route.HopCount, false)
	rec, err := NewRecompiler(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g0, f0 := rec.Graph(), rec.FIB()
	d, err := rec.Apply()
	if err != nil {
		t.Fatalf("empty Apply: %v", err)
	}
	if d != nil {
		t.Fatal("empty Apply returned a delta")
	}
	if rec.Graph() != g0 || rec.FIB() != f0 {
		t.Fatal("empty Apply mutated the recompiler")
	}
}

// TestCoalescePinned pins the coalescer's behaviour case by case:
// add+remove cancellation, weight last-write-wins, a weight edit that
// reverts to the current value, a tie-break-flipping intermediate state,
// and the remove+re-add shape that must fall back to replay.
func TestCoalescePinned(t *testing.T) {
	build := func(t *testing.T, disc route.Discriminator) *Recompiler {
		g := graph.RandomTwoConnected(8, 13, 11)
		p := scaleProtocol(t, g, rotation.Random(g, 3), disc, false)
		rec, err := NewRecompiler(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	findAddable := func(g *graph.Graph) (graph.NodeID, graph.NodeID) {
		for a := 0; a < g.NumNodes(); a++ {
			for b := a + 1; b < g.NumNodes(); b++ {
				if !g.HasLink(graph.NodeID(a), graph.NodeID(b)) {
					return graph.NodeID(a), graph.NodeID(b)
				}
			}
		}
		panic("complete graph")
	}

	t.Run("add-remove-cancels", func(t *testing.T) {
		rec := build(t, route.HopCount)
		g0 := rec.Graph()
		a, b := findAddable(g0)
		added := graph.LinkID(g0.NumLinks()) // adds append at the end
		d, err := rec.Apply(graph.AddLinkEdit(a, b, 2), graph.RemoveLinkEdit(added))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatal("cancelling batch returned a delta")
		}
		if rec.Graph() != g0 {
			t.Fatal("cancelling batch mutated the graph")
		}
		if got := rec.stats.coalescedEdits; got != 2 {
			t.Fatalf("CoalescedEdits = %d, want 2", got)
		}
	})

	t.Run("weight-revert-cancels", func(t *testing.T) {
		rec := build(t, route.WeightSum)
		l := graph.LinkID(4)
		w0 := rec.Graph().Weight(l)
		d, err := rec.Apply(graph.SetWeight(l, w0*3), graph.SetWeight(l, w0))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatal("reverting batch returned a delta")
		}
		if got := rec.stats.coalescedEdits; got != 2 {
			t.Fatalf("CoalescedEdits = %d, want 2", got)
		}
	})

	t.Run("weight-last-write-wins", func(t *testing.T) {
		recA, recB := build(t, route.WeightSum), build(t, route.WeightSum)
		l := graph.LinkID(2)
		d, err := recA.Apply(graph.SetWeight(l, 9), graph.SetWeight(l, 2.5))
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			t.Fatal("net weight change coalesced to nothing")
		}
		if got := recA.stats.coalescedEdits; got != 1 {
			t.Fatalf("CoalescedEdits = %d, want 1", got)
		}
		// Same state as applying only the final write…
		dB, err := recB.Apply(graph.SetWeight(l, 2.5))
		if err != nil {
			t.Fatal(err)
		}
		fibsEqual(t, "lww vs single", d.FIB, dB.FIB)
		// …and as compiling the final graph from scratch.
		want, _ := fullRecompile(t, d, route.WeightSum, core.Full, false)
		fibsEqual(t, "lww vs scratch", d.FIB, want)
	})

	t.Run("tie-break-flip-intermediate", func(t *testing.T) {
		// A ring's two arcs can tie exactly. The intermediate edit sets a
		// weight that creates the tie (flipping shortest-path tie-breaks
		// during replay); the final write resolves it. Coalesced Apply
		// never sees the tie, yet must land on the identical FIB.
		tp, err := topo.Generated("ring:6")
		if err != nil {
			t.Fatal(err)
		}
		mk := func(t *testing.T) *Recompiler {
			p := scaleProtocol(t, tp.Graph, tp.Embedding, route.WeightSum, false)
			rec, err := NewRecompiler(p, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return rec
		}
		recA, recB := mk(t), mk(t)
		l := tp.Graph.FindLink(0, 1)
		// 0→2 via 0-1-2 costs 1+w(l); the long arc costs 4. w(l)=3 ties.
		edits := []graph.Edit{graph.SetWeight(l, 3), graph.SetWeight(l, 2)}
		dA, err := recA.Apply(edits...)
		if err != nil {
			t.Fatal(err)
		}
		var dB *Delta
		for _, e := range edits {
			dB, err = recB.Apply(e)
			if err != nil {
				t.Fatal(err)
			}
		}
		if dA == nil || dB == nil {
			t.Fatal("expected deltas")
		}
		fibsEqual(t, "tie-break flip", dA.FIB, dB.FIB)
		want, _ := fullRecompile(t, dA, route.WeightSum, core.Full, false)
		fibsEqual(t, "tie-break flip vs scratch", dA.FIB, want)
	})

	t.Run("remove-readd-replays", func(t *testing.T) {
		rec := build(t, route.HopCount)
		g0 := rec.Graph()
		// Remove a non-bridge link and re-add its endpoints: net size
		// equals batch size, so the coalescer declines and Apply replays.
		var l graph.LinkID = graph.NoLink
		bridges := map[graph.LinkID]bool{}
		for _, b := range graph.Bridges(g0) {
			bridges[b] = true
		}
		for i := 0; i < g0.NumLinks(); i++ {
			if !bridges[graph.LinkID(i)] {
				l = graph.LinkID(i)
				break
			}
		}
		lk := g0.Link(l)
		d, err := rec.Apply(graph.RemoveLinkEdit(l), graph.AddLinkEdit(lk.A, lk.B, 5))
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			t.Fatal("remove+re-add is not a no-op (the weight changed)")
		}
		if got := rec.stats.coalescedEdits; got != 0 {
			t.Fatalf("CoalescedEdits = %d, want 0 (replayed)", got)
		}
		want, _ := fullRecompile(t, d, route.HopCount, core.Full, false)
		fibsEqual(t, "remove+re-add", d.FIB, want)
	})

	t.Run("mixed-batch-nets-to-one", func(t *testing.T) {
		recA, recB := build(t, route.WeightSum), build(t, route.WeightSum)
		g0 := recA.Graph()
		a, b := findAddable(g0)
		l := graph.LinkID(1)
		added := graph.LinkID(g0.NumLinks())
		d, err := recA.Apply(
			graph.SetWeight(l, 7),
			graph.AddLinkEdit(a, b, 2),
			graph.SetWeight(l, 3),
			graph.RemoveLinkEdit(added),
		)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			t.Fatal("net weight change coalesced to nothing")
		}
		if got := recA.stats.coalescedEdits; got != 3 {
			t.Fatalf("CoalescedEdits = %d, want 3", got)
		}
		dB, err := recB.Apply(graph.SetWeight(l, 3))
		if err != nil {
			t.Fatal(err)
		}
		fibsEqual(t, "mixed batch", d.FIB, dB.FIB)
	})
}

// TestCoalescedDifferential: random batches biased toward duplicate
// targets (the shapes the coalescer rewrites) applied in one coalesced
// Apply versus edit-by-edit on a second recompiler. Both must land on
// entry-identical FIBs — and on the from-scratch compile of the final
// graph.
func TestCoalescedDifferential(t *testing.T) {
	coalesced := int64(0)
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		n := 7 + int(seed%9)
		g := graph.RandomTwoConnected(n, n+3+int(seed)%n, seed)
		sys := rotation.Random(g, seed*19)
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		quantised := seed%3 == 1
		mk := func() *Recompiler {
			p := scaleProtocol(t, g, sys, disc, quantised)
			rec, err := NewRecompiler(p, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			rec.SetWorkers(2 + int(seed%3))
			return rec
		}
		recA, recB := mk(), mk()
		for step := 0; step < 4; step++ {
			// Duplicate-target bias: half the weight edits hit the same
			// link twice; every third batch adds a link and removes it (or
			// an original) later in the batch.
			var edits []graph.Edit
			cur := recA.Graph()
			hot := graph.LinkID(rng.Intn(cur.NumLinks()))
			edits = append(edits,
				graph.SetWeight(hot, 1+float64(rng.Intn(9))),
				graph.SetWeight(hot, 1+float64(rng.Intn(9))))
			if step%3 == 0 {
				a := graph.NodeID(rng.Intn(cur.NumNodes()))
				b := graph.NodeID(rng.Intn(cur.NumNodes()))
				if a != b && !cur.HasLink(a, b) {
					added := graph.LinkID(cur.NumLinks())
					edits = append(edits, graph.AddLinkEdit(a, b, 1+9*rng.Float64()))
					if rng.Intn(2) == 0 {
						edits = append(edits, graph.RemoveLinkEdit(added))
					}
				}
			}
			dA, err := recA.Apply(edits...)
			if err != nil {
				t.Fatalf("%s: %v", testCtx(seed, step, edits), err)
			}
			var dB *Delta
			for _, e := range edits {
				dB, err = recB.Apply(e)
				if err != nil {
					t.Fatalf("%s: replay: %v", testCtx(seed, step, edits), err)
				}
			}
			ctx := testCtx(seed, step, edits)
			if dA == nil {
				// Batch netted out; the per-edit replay must have walked
				// back to the same state.
				fibsEqual(t, ctx+" (net no-op)", recB.FIB(), recA.FIB())
				continue
			}
			fibsEqual(t, ctx, dA.FIB, dB.FIB)
			want, _ := fullRecompile(t, dA, disc, core.Full, quantised)
			fibsEqual(t, ctx+" vs scratch", dA.FIB, want)
		}
		coalesced += recA.stats.coalescedEdits
	}
	if coalesced == 0 {
		t.Fatal("differential never exercised the coalescer")
	}
	t.Logf("%d edits coalesced away", coalesced)
}

// TestSharedColumnsChainedDifferential drives satellite (d): a
// shared-column FIB recompiled across chained random edits — including
// structural adds/removes — stays entry-identical to the dense-column
// recompiler, and Engine.ApplyDelta hot-swaps the shared FIBs while
// worker goroutines decide on them (run with -race).
func TestSharedColumnsChainedDifferential(t *testing.T) {
	tp, err := topo.Generated("rand:48@5")
	if err != nil {
		t.Fatal(err)
	}
	g := tp.Graph
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cols ColumnMode) *Recompiler {
		p := scaleProtocol(t, g, sys, route.WeightSum, true)
		fib, err := CompileWithOptions(p, nil, CompileOptions{Columns: cols, PageSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewRecompiler(p, nil, fib)
		if err != nil {
			t.Fatal(err)
		}
		rec.SetWorkers(3)
		return rec
	}
	recShared, recDense := mk(ColumnsShared), mk(ColumnsDense)
	if !recShared.FIB().SharedColumns() || recDense.FIB().SharedColumns() {
		t.Fatal("fixture layouts wrong")
	}

	reg := telemetry.NewRegistry()
	eng := NewEngine(recShared.FIB(), EngineConfig{Shards: 2, Metrics: reg,
		OnDone: func(*Batch) {}})
	defer eng.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			pkts := make([]Packet, 32)
			nn := eng.FIB().NumNodes()
			for j := range pkts {
				pkts[j] = Packet{Node: graph.NodeID(rng.Intn(nn)),
					Dst: graph.NodeID(rng.Intn(nn)), Ingress: rotation.NoDart}
			}
			for !eng.Submit(&Batch{Pkts: pkts}) {
			}
		}
	}()

	rng := rand.New(rand.NewSource(4242))
	for step := 0; step < 12; step++ {
		var edits []graph.Edit
		cur := recShared.Graph()
		for len(edits) < 1+rng.Intn(3) {
			e, ok := randomEdit(cur, rng)
			if !ok {
				break
			}
			edits = append(edits, e)
			next, _, err := graph.ApplyEdit(cur, e)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		if len(edits) == 0 {
			continue
		}
		dS, err := recShared.Apply(edits...)
		if err != nil {
			t.Fatalf("shared step %d: %v", step, err)
		}
		dD, err := recDense.Apply(edits...)
		if err != nil {
			t.Fatalf("dense step %d: %v", step, err)
		}
		if (dS == nil) != (dD == nil) {
			t.Fatalf("step %d: coalescing diverged between layouts", step)
		}
		if dS == nil {
			continue
		}
		if !dS.FIB.SharedColumns() {
			t.Fatalf("step %d: recompiled FIB lost the shared layout", step)
		}
		fibsEqual(t, testCtx(int64(step), step, edits), dS.FIB, dD.FIB)
		if err := eng.ApplyDelta(dS); err != nil {
			t.Fatalf("step %d: swap: %v", step, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := reg.Snapshot().Gauge(MetricFIBMemBytes); got != eng.FIB().MemBytes() {
		t.Fatalf("fib.mem.bytes gauge %d, want %d", got, eng.FIB().MemBytes())
	}
}

// TestSharedColumnsMemBytes is the memory acceptance gate: on rand:2000
// the shared-column layout must cut resident FIB bytes at least 3× under
// the dense planes.
func TestSharedColumnsMemBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("rand:2000 compile in -short mode")
	}
	tp, err := topo.Generated("rand:2000@1")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p := scaleProtocol(t, tp.Graph, sys, route.HopCount, true)
	dense, err := CompileWithOptions(p, nil, CompileOptions{Columns: ColumnsDense})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := CompileWithOptions(p, nil, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.SharedColumns() {
		t.Fatal("auto mode compiled rand:2000 dense")
	}
	db, sb := dense.MemBytes(), shared.MemBytes()
	if db <= 0 || sb <= 0 {
		t.Fatalf("MemBytes dense %d shared %d", db, sb)
	}
	ratio := float64(db) / float64(sb)
	t.Logf("rand:2000 FIB bytes: dense %d, shared %d (%.1f×)", db, sb, ratio)
	if ratio < 3 {
		t.Fatalf("shared columns save only %.2f×, want ≥ 3×", ratio)
	}
	// Spot-check identity on a sample of entries (the full differential
	// runs on smaller graphs above).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		node, dst := rng.Intn(2000), rng.Intn(2000)
		if dense.ndAt(node, dst) != shared.ndAt(node, dst) ||
			dense.ddAt(node, dst) != shared.ddAt(node, dst) ||
			dense.ddqAt(node, dst) != shared.ddqAt(node, dst) {
			t.Fatalf("entry (%d,%d) diverges between layouts", node, dst)
		}
	}
}

// TestParallelCompileSpeedup is the wall-clock acceptance gate: with ≥ 8
// cores, the parallel pipeline (trees, quantiser ranking, FIB fill) over
// rand:2000 beats the sequential one ≥ 4×. Skipped on smaller machines —
// the bit-identity differentials above still cover the parallel paths
// there.
func TestParallelCompileSpeedup(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 8 {
		t.Skipf("GOMAXPROCS %d < 8; speedup gate needs real cores", procs)
	}
	if testing.Short() {
		t.Skip("rand:2000 compile in -short mode")
	}
	tp, err := topo.Generated("rand:2000@1")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	pipeline := func(workers int) *FIB {
		tbl := route.BuildWorkers(tp.Graph, route.HopCount, workers)
		p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
		if err != nil {
			t.Fatal(err)
		}
		quant := core.BuildQuantiserWorkers(tbl, workers)
		fib, err := CompileWithOptions(p, quant, CompileOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return fib
	}
	pipeline(procs) // warm up (page cache, allocator)
	t0 := time.Now()
	seqFIB := pipeline(1)
	seq := time.Since(t0)
	t0 = time.Now()
	parFIB := pipeline(procs)
	par := time.Since(t0)
	speedup := seq.Seconds() / par.Seconds()
	t.Logf("rand:2000 compile: sequential %v, %d workers %v (%.1f×)", seq, procs, par, speedup)
	fibsEqual(t, "speedup identity", parFIB, seqFIB)
	if speedup < 4 {
		t.Fatalf("parallel compile speedup %.2f×, want ≥ 4× at GOMAXPROCS %d", speedup, procs)
	}
}
