package dataplane_test

import (
	"fmt"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// buildProtocol assembles a core.Protocol over g with the given rotation
// system, discriminator and variant.
func buildProtocol(t testing.TB, g *graph.Graph, sys *rotation.System, disc route.Discriminator, v core.Variant) *core.Protocol {
	t.Helper()
	p, err := core.New(g, sys, route.Build(g, disc), core.Config{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ddProbes returns the header DD values worth testing toward dst: every
// discriminator value any node holds (the only values real operation can
// stamp), plus off-by-half probes to hit both sides of the strict
// comparison, plus zero.
func ddProbes(tbl *route.Table, g *graph.Graph, dst graph.NodeID) []float64 {
	seen := map[float64]bool{0: true}
	out := []float64{0}
	for n := 0; n < g.NumNodes(); n++ {
		if !tbl.Reachable(graph.NodeID(n), dst) {
			continue
		}
		dd := tbl.DD(graph.NodeID(n), dst)
		for _, v := range []float64{dd, dd + 0.5} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// diffProtocol exhaustively compares FIB.Decide against
// core.Protocol.Decide over every node, destination, ingress dart and
// plausible header, under each failure set. Decisions must be
// bit-identical: same egress dart, same event, same output header.
func diffProtocol(t *testing.T, p *core.Protocol, failsets []*graph.FailureSet) {
	t.Helper()
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	sys := p.System()
	tbl := p.Routes()
	checked := 0
	for fi, fs := range failsets {
		st := dataplane.FromFailureSet(g.NumLinks(), fs)
		for node := 0; node < g.NumNodes(); node++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				nid, did := graph.NodeID(node), graph.NodeID(dst)
				// PR-clear decisions; ingress is irrelevant to the rule.
				want := p.Decide(nid, did, rotation.NoDart, core.Header{}, fs)
				got := fib.Decide(nid, did, rotation.NoDart, core.Header{}, st)
				if got != want {
					t.Fatalf("failset %d %v: Decide(%d→%d, clear) = %+v, core says %+v", fi, fs, node, dst, got, want)
				}
				checked++
				if !tbl.Reachable(nid, did) {
					continue // core's DD panics on unreachable pairs
				}
				// PR-set decisions from every ingress interface.
				for _, nb := range g.Neighbors(nid) {
					in := rotation.ReverseID(sys.OutgoingDart(nid, nb.Link))
					for _, dd := range ddProbes(tbl, g, did) {
						hdr := core.Header{PR: true, DD: dd}
						want := p.Decide(nid, did, in, hdr, fs)
						got := fib.Decide(nid, did, in, hdr, st)
						if got != want {
							t.Fatalf("failset %d %v: Decide(%d→%d, in=%d, dd=%v) = %+v, core says %+v",
								fi, fs, node, dst, in, dd, got, want)
						}
						checked++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("differential sweep compared nothing")
	}
}

// multiFailsets collects every connectivity-preserving single failure plus
// sampled multi-failure scenarios.
func multiFailsets(t testing.TB, g *graph.Graph, ks []int, perK int, seed int64) []*graph.FailureSet {
	t.Helper()
	out := graph.SingleFailureScenarios(g)
	for _, k := range ks {
		if k >= g.NumLinks() {
			continue
		}
		fss, err := graph.SampleFailureScenarios(g, k, perK, seed+int64(k))
		if err != nil {
			continue // graph too fragile for k failures; singles still cover it
		}
		out = append(out, fss...)
	}
	// The empty set exercises the pure fast path.
	out = append(out, graph.NewFailureSet())
	return out
}

// TestCompiledMatchesBuiltins proves FIB ≡ core.Protocol.Decide on all
// built-in topologies, both variants, both discriminators, under single
// and multi-failure scenarios.
func TestCompiledMatchesBuiltins(t *testing.T) {
	for _, name := range topo.Names() {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sys := tp.Embedding
		if sys == nil {
			sys, err = (embedding.Auto{Seed: 1}).Embed(tp.Graph)
			if err != nil {
				t.Fatal(err)
			}
		}
		failsets := multiFailsets(t, tp.Graph, []int{2, 4}, 4, 11)
		for _, v := range []core.Variant{core.Basic, core.Full} {
			for _, disc := range []route.Discriminator{route.HopCount, route.WeightSum} {
				t.Run(fmt.Sprintf("%s/%s/%s", name, v, disc), func(t *testing.T) {
					diffProtocol(t, buildProtocol(t, tp.Graph, sys, disc, v), failsets)
				})
			}
		}
	}
}

// TestCompiledMatchesRandomGraphs proves the equivalence on ≥ 50 random
// 2-edge-connected topologies under random rotation systems — PR must be
// correct (and the compiler faithful) under *any* embedding.
func TestCompiledMatchesRandomGraphs(t *testing.T) {
	const graphs = 60
	for seed := int64(1); seed <= graphs; seed++ {
		n := 6 + int(seed%9)     // 6..14 nodes
		m := n + 2 + int(seed)%n // sparse to moderately meshed
		g := graph.RandomTwoConnected(n, m, seed)
		sys := rotation.Random(g, seed*7)
		failsets := multiFailsets(t, g, []int{2, 3}, 3, seed)
		v := core.Full
		disc := route.HopCount
		if seed%2 == 0 {
			v = core.Basic
		}
		if seed%3 == 0 {
			disc = route.WeightSum
		}
		t.Run(fmt.Sprintf("seed%d-n%d-m%d-%s-%s", seed, n, m, v, disc), func(t *testing.T) {
			diffProtocol(t, buildProtocol(t, g, sys, disc, v), failsets)
		})
	}
}

// FuzzCompiledDecide cross-checks single decisions against core on fuzzed
// (graph, failure set, packet state) coordinates.
func FuzzCompiledDecide(f *testing.F) {
	f.Add(int64(3), uint8(1), uint8(2), uint8(4), uint8(0), false, float64(2))
	f.Add(int64(9), uint8(0), uint8(7), uint8(1), uint8(3), true, float64(3.5))
	f.Fuzz(func(t *testing.T, seed int64, nodeSel, dstSel, inSel, failSel uint8, pr bool, dd float64) {
		if seed < 0 {
			seed = -seed
		}
		n := 6 + int(seed%8)
		g := graph.RandomTwoConnected(n, n+3+int(seed%5), seed%64+1)
		sys := rotation.Random(g, seed%64+2)
		tbl := route.Build(g, route.HopCount)
		p, err := core.New(g, sys, tbl, core.Config{Variant: core.Variant(seed % 2)})
		if err != nil {
			t.Fatal(err)
		}
		fib, err := dataplane.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		node := graph.NodeID(int(nodeSel) % g.NumNodes())
		dst := graph.NodeID(int(dstSel) % g.NumNodes())
		fs := graph.NewFailureSet(graph.LinkID(int(failSel) % g.NumLinks()))
		if !graph.ConnectedUnder(g, fs) {
			fs = graph.NewFailureSet()
		}
		st := dataplane.FromFailureSet(g.NumLinks(), fs)
		ingress := rotation.NoDart
		if pr {
			if dd != dd || dd < 0 || dd > 1e6 {
				dd = 1 // clamp NaN/absurd discriminators the wire could never carry
			}
			nbrs := g.Neighbors(node)
			nb := nbrs[int(inSel)%len(nbrs)]
			ingress = rotation.ReverseID(sys.OutgoingDart(node, nb.Link))
		}
		hdr := core.Header{PR: pr, DD: dd}
		want := p.Decide(node, dst, ingress, hdr, fs)
		got := fib.Decide(node, dst, ingress, hdr, st)
		if got != want {
			t.Fatalf("Decide(%d→%d, in=%d, hdr=%+v, fails=%v) = %+v, core says %+v",
				node, dst, ingress, hdr, fs, got, want)
		}
	})
}

// TestDecideRefusesMarkedPacketWithoutIngress: core.Protocol panics on
// this caller-bug state, but the dataplane faces untrusted inputs and
// must refuse instead of crashing — through Decide and DecideBatch both.
func TestDecideRefusesMarkedPacketWithoutIngress(t *testing.T) {
	tp := topo.Abilene(topo.DistanceWeights)
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	fib, err := dataplane.Compile(buildProtocol(t, tp.Graph, sys, route.HopCount, core.Full))
	if err != nil {
		t.Fatal(err)
	}
	st := dataplane.FromFailureSet(tp.Graph.NumLinks(), nil)
	hdr := core.Header{PR: true, DD: 2}
	if d := fib.Decide(0, 5, rotation.NoDart, hdr, st); d.OK {
		t.Fatalf("Decide accepted a PR-marked packet with no ingress: %+v", d)
	}
	pkts := []dataplane.Packet{{Node: 0, Dst: 5, Ingress: rotation.NoDart, Hdr: hdr}}
	fib.DecideBatch(pkts, st)
	if pkts[0].OK {
		t.Fatalf("DecideBatch accepted a PR-marked packet with no ingress: %+v", pkts[0])
	}
}

var decisionSink core.Decision

// TestDecideZeroAllocs pins the hot-path property the subsystem exists
// for: a compiled forwarding decision allocates nothing.
func TestDecideZeroAllocs(t *testing.T) {
	tp := topo.Geant(topo.DistanceWeights)
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p := buildProtocol(t, tp.Graph, sys, route.HopCount, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	st := dataplane.FromFailureSet(tp.Graph.NumLinks(), graph.NewFailureSet(0))
	ingress := rotation.DartID(4)
	node := tp.Graph.Link(rotation.LinkOf(ingress)).B
	dst := graph.NodeID(tp.Graph.NumNodes() - 1)
	cases := []core.Header{
		{},                  // shortest-path fast path
		{PR: true, DD: 3},   // cycle following
		{PR: true, DD: 0.5}, // termination test → resume
	}
	// The shared-column layout must stay on the allocation-free decide
	// path too: its accessors index page tables instead of dense planes,
	// but never allocate.
	shared, err := dataplane.CompileWithOptions(p, nil,
		dataplane.CompileOptions{Columns: dataplane.ColumnsShared})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*dataplane.FIB{fib, shared} {
		f := f
		for _, hdr := range cases {
			hdr := hdr
			if allocs := testing.AllocsPerRun(200, func() {
				decisionSink = f.Decide(node, dst, ingress, hdr, st)
			}); allocs != 0 {
				t.Errorf("Decide(hdr=%+v, shared=%v) allocates %.1f per op, want 0",
					hdr, f.SharedColumns(), allocs)
			}
		}
	}
}

// TestCompileCodecSelection: Compile picks DSCP whenever the quantised
// code fits its 3 DD bits and the flow label otherwise — per network, the
// decision the paper leaves to the operator made mechanical.
func TestCompileCodecSelection(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		disc  route.Discriminator
		codec dataplane.Codec
	}{
		{"abilene/hop", topo.Abilene(topo.DistanceWeights).Graph, route.HopCount, dataplane.CodecDSCP},
		{"geant/hop", topo.Geant(topo.DistanceWeights).Graph, route.HopCount, dataplane.CodecDSCP},
		{"geant/weight", topo.Geant(topo.DistanceWeights).Graph, route.WeightSum, dataplane.CodecFlowLabel},
		{"ring24/hop", graph.Ring(24), route.HopCount, dataplane.CodecFlowLabel},
		{"ring14/hop", graph.Ring(14), route.HopCount, dataplane.CodecDSCP},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := (embedding.Auto{Seed: 1}).Embed(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			fib, err := dataplane.Compile(buildProtocol(t, tc.g, sys, tc.disc, core.Full))
			if err != nil {
				t.Fatal(err)
			}
			if fib.Codec() != tc.codec {
				t.Fatalf("codec = %v (dd bits %d); want %v", fib.Codec(), fib.DDBits(), tc.codec)
			}
			if tc.codec == dataplane.CodecDSCP && fib.DDBits() > header.DDBits {
				t.Fatalf("DSCP selected for %d-bit codes", fib.DDBits())
			}
			if tc.codec == dataplane.CodecFlowLabel && fib.DDBits() <= header.DDBits {
				t.Fatalf("flow label selected for %d-bit codes", fib.DDBits())
			}
		})
	}
}

// TestWireDDMatchesQuantiser: the FIB's wire discriminators are exactly
// the core quantiser's ranks, and every reachable pair has an encodable
// one — the structural claim behind removing the overflow drop class.
func TestWireDDMatchesQuantiser(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 8 + int(seed%8)
		g := graph.RandomTwoConnected(n, n+4, seed)
		sys := rotation.Random(g, seed)
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		tbl := route.Build(g, disc)
		p, err := core.New(g, sys, tbl, core.Config{Variant: core.Full})
		if err != nil {
			t.Fatal(err)
		}
		fib, err := dataplane.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		q := core.BuildQuantiser(tbl)
		maxEnc := uint32(1)<<fib.DDBits() - 1
		for node := 0; node < n; node++ {
			for dst := 0; dst < n; dst++ {
				nid, did := graph.NodeID(node), graph.NodeID(dst)
				rank, ok := fib.WireDD(nid, did)
				if ok != tbl.Reachable(nid, did) {
					t.Fatalf("seed %d: WireDD(%d,%d) ok=%v, reachable=%v", seed, node, dst, ok, tbl.Reachable(nid, did))
				}
				if !ok {
					continue
				}
				if rank != q.Rank(nid, did) {
					t.Fatalf("seed %d: WireDD(%d,%d) = %d, quantiser says %d", seed, node, dst, rank, q.Rank(nid, did))
				}
				if rank > maxEnc {
					t.Fatalf("seed %d: rank %d exceeds the %d-bit budget", seed, rank, fib.DDBits())
				}
			}
		}
	}
}

// TestCompiledMatchesQuantisedProtocol: compiling a Config.Quantise
// protocol must keep Decide bit-identical to it — the compiled dd table
// holds ranks, the same units the quantised protocol stamps into
// Header.DD — under both discriminators and random embeddings.
func TestCompiledMatchesQuantisedProtocol(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 8 + int(seed%6)
		g := graph.RandomTwoConnected(n, n+4, seed)
		sys := rotation.Random(g, seed*3)
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		p, err := core.New(g, sys, route.Build(g, disc), core.Config{Variant: core.Full, Quantise: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("seed%d-%s", seed, disc), func(t *testing.T) {
			diffProtocol(t, p, multiFailsets(t, g, []int{2}, 3, seed))
		})
	}
}
