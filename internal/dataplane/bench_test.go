package dataplane_test

import (
	"fmt"
	"math/rand"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

func benchFixture(b *testing.B, name string) (*dataplane.FIB, *graph.Graph, *rotation.System) {
	fib, _, g, sys := benchFixtureFull(b, name)
	return fib, g, sys
}

func benchFixtureFull(b *testing.B, name string) (*dataplane.FIB, *core.Protocol, *graph.Graph, *rotation.System) {
	b.Helper()
	tp, err := topo.ByNameWeighted(name, topo.DistanceWeights)
	if err != nil {
		b.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		sys, err = (embedding.Auto{Seed: 1}).Embed(tp.Graph)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := buildProtocol(b, tp.Graph, sys, route.HopCount, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	return fib, p, tp.Graph, sys
}

// benchWorkload builds a reusable 256-packet forwarding mix: mostly
// shortest-path traffic, one in four packets cycle following, one link
// down. Every packet carries a concrete ingress dart so batches can be
// recycled regardless of what header the previous decision left behind.
func benchWorkload(g *graph.Graph, sys *rotation.System, seed int64) []dataplane.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]dataplane.Packet, 256)
	for i := range pkts {
		node := graph.NodeID(rng.Intn(g.NumNodes()))
		nbrs := g.Neighbors(node)
		nb := nbrs[rng.Intn(len(nbrs))]
		pkts[i] = dataplane.Packet{
			Node:    node,
			Dst:     graph.NodeID(rng.Intn(g.NumNodes())),
			Ingress: rotation.ReverseID(sys.OutgoingDart(node, nb.Link)),
			Hdr:     core.Header{PR: rng.Intn(4) == 0, DD: float64(rng.Intn(8))},
		}
	}
	return pkts
}

// BenchmarkCompiledDecide measures a single compiled forwarding decision
// during cycle following — the compiled counterpart of the repo's
// BenchmarkForwardDecision.
func BenchmarkCompiledDecide(b *testing.B) {
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		b.Run(name, func(b *testing.B) {
			fib, g, _ := benchFixture(b, name)
			st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
			ingress := rotation.DartID(4)
			node := g.Link(rotation.LinkOf(ingress)).B
			dst := graph.NodeID(g.NumNodes() - 1)
			hdr := core.Header{PR: true, DD: 3}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decisionSink = fib.Decide(node, dst, ingress, hdr, st)
			}
		})
	}
}

// BenchmarkCompiledDecideBatch measures the engine's inner loop: batched
// decisions over a cache-resident batch, the per-decision number a
// forwarding worker actually achieves. Compare its decisions/s with
// BenchmarkInterpretedDecideBatch — the same workload through
// core.Protocol.Decide — for the compiled dataplane's speedup (≈ 6× on
// the reference machine).
func BenchmarkCompiledDecideBatch(b *testing.B) {
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		b.Run(name, func(b *testing.B) {
			fib, g, sys := benchFixture(b, name)
			st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
			pkts := benchWorkload(g, sys, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(pkts) {
				fib.DecideBatch(pkts, st)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

// BenchmarkInterpretedDecideBatch is the baseline for
// BenchmarkCompiledDecideBatch: the identical packet mix decided by the
// interpreted core.Protocol (map-backed failure set, method dispatch per
// lookup).
func BenchmarkInterpretedDecideBatch(b *testing.B) {
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		b.Run(name, func(b *testing.B) {
			_, p, g, sys := benchFixtureFull(b, name)
			fails := graph.NewFailureSet(0)
			pkts := benchWorkload(g, sys, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(pkts) {
				for j := range pkts {
					pk := &pkts[j]
					d := p.Decide(pk.Node, pk.Dst, pk.Ingress, pk.Hdr, fails)
					pk.Egress, pk.Event, pk.Hdr, pk.OK = d.Egress, d.Event, d.Header, d.OK
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

// BenchmarkForwardWire measures the full wire fast path in both address
// families: mark decode, rank-space decide, mark re-encode, and (IPv4
// only) incremental checksum repair. Both paths must stay at 0 allocs/op.
func BenchmarkForwardWire(b *testing.B) {
	b.Run("ipv4-dscp", func(b *testing.B) {
		fib, g, _ := benchFixture(b, "geant")
		st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
		buf := mkPacket(b, 1, graph.NodeID(g.NumNodes()-1), 64)
		tmpl := append([]byte(nil), buf...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, tmpl) // restore TTL/DSCP/checksum; ~1 ns of the loop
			_, verdictSink = fib.ForwardWire(1, rotation.NoDart, st, buf)
		}
	})
	b.Run("ipv6-flowlabel", func(b *testing.B) {
		_, fib, g := flowLabelFixture(b)
		st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
		buf := mkPacket6(b, 1, graph.NodeID(g.NumNodes()-1), 64)
		tmpl := append([]byte(nil), buf...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, tmpl) // restore hop limit / flow label
			_, verdictSink = fib.ForwardWire(1, rotation.NoDart, st, buf)
		}
	})
}

// BenchmarkForwardWireBatch measures the engine's byte-level inner loop:
// a 256-frame wire batch forwarded under one snapshot.
func BenchmarkForwardWireBatch(b *testing.B) {
	_, fib, g := flowLabelFixture(b)
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	rng := rand.New(rand.NewSource(3))
	pkts := make([]dataplane.WirePacket, 256)
	tmpls := make([][]byte, len(pkts))
	for i := range pkts {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		buf := mkPacket6(b, src, dst, 64)
		tmpls[i] = append([]byte(nil), buf...)
		pkts[i] = dataplane.WirePacket{Node: src, Ingress: rotation.NoDart, Buf: buf}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pkts) {
		for j := range pkts {
			copy(pkts[j].Buf, tmpls[j])
		}
		fib.ForwardWireBatch(pkts, st)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkTxQueueSend measures the egress hot path: one per-dart
// paced, bounded transmit. Must stay at 0 allocs/op.
func BenchmarkTxQueueSend(b *testing.B) {
	fib, g, _ := benchFixture(b, "geant")
	q := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: 1e13})
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	numDarts := rotation.DartID(2 * g.NumLinks())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Send(rotation.DartID(i)%numDarts, 8192, st)
	}
	if n := testing.AllocsPerRun(100, func() { q.Send(2, 8192, st) }); n != 0 {
		b.Fatalf("Send allocates %v per op; want 0", n)
	}
}

// BenchmarkEngineEgress measures the full three-stage pipeline — ingest,
// decide, transmit through per-dart paced queues — per shard count. Its
// pps metric is the end-to-end counterpart of BenchmarkEngine's
// decide-only number; the delta is the egress cost.
func BenchmarkEngineEgress(b *testing.B) {
	const batchSize = 256
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("geant/shards-%d", shards), func(b *testing.B) {
			fib, g, sys := benchFixture(b, "geant")
			reg := telemetry.NewRegistry()
			tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{
				// Links fast enough that pacing, not dropping, dominates:
				// the benchmark measures transmit cost, not drop cost.
				BandwidthBps: 1e13,
				Metrics:      reg,
			})
			free := make(chan *dataplane.Batch, 64)
			eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
				Shards: shards,
				Egress: tx,
				OnDone: func(batch *dataplane.Batch) { free <- batch },
			})
			eng.SetLink(0, true)
			for i := 0; i < 4*shards; i++ {
				free <- &dataplane.Batch{Pkts: benchWorkload(g, sys, int64(i+1))[:batchSize]}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchSize {
				batch := <-free
				for !eng.Submit(batch) {
				}
			}
			decided := eng.Close()
			b.StopTimer()
			b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/s")
			sent := reg.Snapshot().Counter(dataplane.MetricTxSent)
			b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}

// BenchmarkEngine measures sharded engine throughput per topology and
// shard count. The per-op time is per decision; the pps metric is
// decisions per second across all shards.
func BenchmarkEngine(b *testing.B) {
	const batchSize = 256
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/shards-%d", name, shards), func(b *testing.B) {
				fib, g, sys := benchFixture(b, name)
				free := make(chan *dataplane.Batch, 64)
				eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
					Shards: shards,
					OnDone: func(batch *dataplane.Batch) { free <- batch },
				})
				eng.SetLink(0, true)
				// A small cache-resident pool keeps the measurement on
				// decision cost plus ring hand-off, not memory streaming.
				for i := 0; i < 4*shards; i++ {
					free <- &dataplane.Batch{Pkts: benchWorkload(g, sys, int64(i+1))[:batchSize]}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += batchSize {
					batch := <-free
					for !eng.Submit(batch) {
					}
				}
				decided := eng.Close()
				b.StopTimer()
				b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// BenchmarkFIBDecide is the CI-gated per-decision number (see the bench
// job in .github/workflows/ci.yml and BENCH_baseline.json): one compiled
// forwarding decision during cycle following on the geant backbone. It
// must stay at 0 allocs/op.
func BenchmarkFIBDecide(b *testing.B) {
	fib, g, _ := benchFixture(b, "geant")
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	ingress := rotation.DartID(4)
	node := g.Link(rotation.LinkOf(ingress)).B
	dst := graph.NodeID(g.NumNodes() - 1)
	hdr := core.Header{PR: true, DD: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decisionSink = fib.Decide(node, dst, ingress, hdr, st)
	}
}

// churnBench builds the ring:64 recompiler fixture for the delta
// benchmarks: the maintenance scenario the README's churn table pins.
func churnBench(b testing.TB) (*dataplane.Recompiler, *graph.Graph) {
	b.Helper()
	tp, err := topo.ByName("ring:64")
	if err != nil {
		b.Fatal(err)
	}
	tbl := route.Build(tp.Graph, route.HopCount)
	p, err := core.New(tp.Graph, tp.Embedding, tbl, core.Config{Variant: core.Full})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := dataplane.NewRecompiler(p, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return rec, tp.Graph
}

// BenchmarkRecompileDelta measures one delta recompile of a single-link
// weight change (a metric tweak, 1↔2) on ring:64 — the control-plane
// latency of routine planned maintenance. Compare BenchmarkRecompileFull;
// the ≥5× ratio is pinned by TestDeltaRecompileSpeedup.
func BenchmarkRecompileDelta(b *testing.B) {
	rec, _ := churnBench(b)
	weights := [2]float64{2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Apply(graph.SetWeight(7, weights[i%2])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecompileDeltaDrain is the heavy variant: costing a link out
// (1↔8) moves roughly half of every destination tree's distances and
// re-ranks most quantiser columns — the worst case for delta
// recompilation, still ~3× a full rebuild.
func BenchmarkRecompileDeltaDrain(b *testing.B) {
	rec, _ := churnBench(b)
	weights := [2]float64{8, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Apply(graph.SetWeight(7, weights[i%2])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecompileFull measures the same weight change through today's
// full rebuild: routing tables, quantiser, protocol and FIB from scratch.
func BenchmarkRecompileFull(b *testing.B) {
	rec, g := churnBench(b)
	sys := rec.System()
	weights := [2]float64{2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, _, err := graph.ApplyEdit(g, graph.SetWeight(7, weights[i%2]))
		if err != nil {
			b.Fatal(err)
		}
		orders := make([][]graph.LinkID, g2.NumNodes())
		for v := 0; v < g2.NumNodes(); v++ {
			orders[v] = sys.LinkOrder(graph.NodeID(v))
		}
		sys2, err := rotation.FromLinkOrders(g2, orders)
		if err != nil {
			b.Fatal(err)
		}
		tbl := route.Build(g2, route.HopCount)
		quant := core.BuildQuantiser(tbl)
		p, err := core.New(g2, sys2, tbl, core.Config{Variant: core.Full})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dataplane.CompileWith(p, quant); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile is the CI-gated compile-path number: one full FIB
// compile of a generated scale topology through the parallel pipeline
// with the worker count pinned at 4, so ns/op and allocs/op are stable
// across differently-sized CI boxes. rand:512 and rand:2000 compile into
// the shared-column layout (ColumnsAuto engages at 512 nodes); the
// routing tables and quantiser are prebuilt outside the timer — this
// measures column fill plus page interning, the piece the shared layout
// changed.
func BenchmarkCompile(b *testing.B) {
	for _, spec := range []string{"rand:512", "rand:2000"} {
		b.Run(spec, func(b *testing.B) {
			tp, err := topo.Generated(spec)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
			if err != nil {
				b.Fatal(err)
			}
			tbl := route.BuildWorkers(tp.Graph, route.HopCount, 4)
			p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
			if err != nil {
				b.Fatal(err)
			}
			quant := core.BuildQuantiserWorkers(tbl, 4)
			opts := dataplane.CompileOptions{Workers: 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fib, err := dataplane.CompileWithOptions(p, quant, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(fib.MemBytes()), "fib-bytes")
				}
			}
		})
	}
}

// BenchmarkRecompileCoalesced measures a duplicate-target maintenance
// batch — three weight writes to the same ring:64 link — through Apply:
// the coalescer nets it to the last write before the delta machinery
// runs, so this should track BenchmarkRecompileDelta, not 3× it.
func BenchmarkRecompileCoalesced(b *testing.B) {
	rec, _ := churnBench(b)
	rec.SetWorkers(4)
	weights := [2]float64{2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Apply(
			graph.SetWeight(7, 9),
			graph.SetWeight(7, 5),
			graph.SetWeight(7, weights[i%2]),
		); err != nil {
			b.Fatal(err)
		}
	}
}
