package dataplane

// The delta-recompilation differential harness: over 100 random
// 2-edge-connected topologies × chained random edit sequences (weight
// changes, link additions, link removals) it proves the two claims the
// churn machinery rests on:
//
//  1. Bit-identity: the Recompiler's patched FIB equals a from-scratch
//     CompileWith over the same edited graph, rotation system and freshly
//     built routing tables — every array, bit for bit (dd compared as raw
//     float bits).
//  2. §4.3 survival: after every delta, the quantiser still
//     order-preserves the raw discriminators and recycled walks stamp
//     strictly decreasing DD codes.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
)

// fibsEqual compares every compiled table bit for bit. Entries are read
// through the ndAt/ddAt/ddqAt accessors, so the comparison is
// representation-independent: dense and shared-column FIBs compare equal
// exactly when every (node, dst) entry matches.
func fibsEqual(t *testing.T, ctx string, got, want *FIB) {
	t.Helper()
	if got.numNodes != want.numNodes || got.numLinks != want.numLinks {
		t.Fatalf("%s: size %d/%d ≠ %d/%d", ctx, got.numNodes, got.numLinks, want.numNodes, want.numLinks)
	}
	if got.variant != want.variant || got.ddBits != want.ddBits || got.codec != want.codec {
		t.Fatalf("%s: meta (%v,%d,%v) ≠ (%v,%d,%v)", ctx,
			got.variant, got.ddBits, got.codec, want.variant, want.ddBits, want.codec)
	}
	n := want.numNodes
	for node := 0; node < n; node++ {
		for dst := 0; dst < n; dst++ {
			if got.ndAt(node, dst) != want.ndAt(node, dst) {
				t.Fatalf("%s: nextDart[%d,%d] %d ≠ %d", ctx, node, dst, got.ndAt(node, dst), want.ndAt(node, dst))
			}
			if math.Float64bits(got.ddAt(node, dst)) != math.Float64bits(want.ddAt(node, dst)) {
				t.Fatalf("%s: dd[%d,%d] %v ≠ %v", ctx, node, dst, got.ddAt(node, dst), want.ddAt(node, dst))
			}
			if got.ddqAt(node, dst) != want.ddqAt(node, dst) {
				t.Fatalf("%s: ddQ[%d,%d] %d ≠ %d", ctx, node, dst, got.ddqAt(node, dst), want.ddqAt(node, dst))
			}
		}
	}
	for d := range want.faceNext {
		if got.faceNext[d] != want.faceNext[d] || got.sigma[d] != want.sigma[d] || got.head[d] != want.head[d] {
			t.Fatalf("%s: dart %d (φ,σ,head) (%d,%d,%d) ≠ (%d,%d,%d)", ctx, d,
				got.faceNext[d], got.sigma[d], got.head[d],
				want.faceNext[d], want.sigma[d], want.head[d])
		}
	}
}

// randomEdit draws a random valid edit for g, preferring weight changes
// (the delta fast path) but exercising additions and removals too.
// Removals only target non-bridge links so the §4.3 walk checks keep a
// connected graph to recycle on.
func randomEdit(g *graph.Graph, rng *rand.Rand) (graph.Edit, bool) {
	switch rng.Intn(5) {
	case 0: // add
		for try := 0; try < 10; try++ {
			a := graph.NodeID(rng.Intn(g.NumNodes()))
			b := graph.NodeID(rng.Intn(g.NumNodes()))
			if a == b || g.HasLink(a, b) {
				continue
			}
			return graph.AddLinkEdit(a, b, 1+9*rng.Float64()), true
		}
		return graph.Edit{}, false
	case 1: // remove a non-bridge link, keeping some headroom
		if g.NumLinks() <= g.NumNodes() {
			return graph.Edit{}, false
		}
		bridges := map[graph.LinkID]bool{}
		for _, b := range graph.Bridges(g) {
			bridges[b] = true
		}
		for try := 0; try < 10; try++ {
			l := graph.LinkID(rng.Intn(g.NumLinks()))
			if !bridges[l] {
				return graph.RemoveLinkEdit(l), true
			}
		}
		return graph.Edit{}, false
	default: // weight change; integral weights provoke equal-cost ties
		l := graph.LinkID(rng.Intn(g.NumLinks()))
		var w float64
		if rng.Intn(2) == 0 {
			w = float64(1 + rng.Intn(5))
		} else {
			w = g.Weight(l) * (0.3 + 1.5*rng.Float64())
		}
		if w <= 0 {
			w = 1
		}
		return graph.SetWeight(l, w), true
	}
}

// fullRecompile is the oracle: fresh routing tables over the delta's
// graph, a fresh protocol over the delta's rotation system, a fresh
// quantiser, a from-scratch CompileWith.
func fullRecompile(t *testing.T, d *Delta, disc route.Discriminator, variant core.Variant, quantised bool) (*FIB, *route.Table) {
	t.Helper()
	tbl := route.Build(d.Graph, disc)
	p, err := core.New(d.Graph, d.System, tbl, core.Config{Variant: variant, Quantise: quantised})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := CompileWith(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fib, tbl
}

// TestRecompilerDifferential is the harness entry point: 100 graphs,
// chained random edit sequences, byte-identical FIBs after every Apply.
func TestRecompilerDifferential(t *testing.T) {
	const graphs = 100
	applies, editsTotal, structurals := 0, 0, 0
	for seed := int64(1); seed <= graphs; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		var g *graph.Graph
		if seed%4 == 0 {
			g = graph.RandomPlanarLike(7+int(seed%8), seed)
		} else {
			n := 6 + int(seed%10)
			g = graph.RandomTwoConnected(n, n+2+int(seed)%n, seed)
		}
		sys := rotation.Random(g, seed*13)
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		quantised := seed%3 == 0
		tbl := route.Build(g, disc)
		p, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: quantised})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewRecompiler(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Force fan-out: these graphs sit below the automatic parallel
		// floor, and the differential must cover the concurrent paths.
		rec.SetWorkers(4)
		for step := 0; step < 6; step++ {
			// Batches of 1–3 edits exercise sequential in-batch composition.
			var edits []graph.Edit
			cur := rec.Graph()
			for len(edits) < 1+rng.Intn(3) {
				e, ok := randomEdit(cur, rng)
				if !ok {
					break
				}
				edits = append(edits, e)
				// Later edits in the batch reference the intermediate
				// graph; materialise it so randomEdit sees valid IDs.
				next, _, err := graph.ApplyEdit(cur, e)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				cur = next
			}
			if len(edits) == 0 {
				continue
			}
			d, err := rec.Apply(edits...)
			if err != nil {
				t.Fatalf("seed %d step %d edits %v: %v", seed, step, edits, err)
			}
			if d == nil {
				// The batch coalesced to a net no-op (e.g. a link added
				// and removed again). Verify the claim: replaying the
				// batch must land exactly back on the current graph.
				after, _, aerr := graph.ApplyEdits(rec.Graph(), edits)
				if aerr != nil {
					t.Fatalf("%s: no-op delta but replay errors: %v", testCtx(seed, step, edits), aerr)
				}
				if after.NumLinks() != rec.Graph().NumLinks() {
					t.Fatalf("%s: no-op delta but link count changed", testCtx(seed, step, edits))
				}
				for l := 0; l < after.NumLinks(); l++ {
					if after.Link(graph.LinkID(l)) != rec.Graph().Link(graph.LinkID(l)) {
						t.Fatalf("%s: no-op delta but link %d differs", testCtx(seed, step, edits), l)
					}
				}
				applies++
				editsTotal += len(edits)
				continue
			}
			applies++
			editsTotal += len(edits)
			if d.Structural {
				structurals++
			}
			wantFIB, wantTbl := fullRecompile(t, d, disc, core.Full, quantised)
			ctx := testCtx(seed, step, edits)
			fibsEqual(t, ctx, d.FIB, wantFIB)
			for dst := 0; dst < d.Graph.NumNodes(); dst++ {
				got, want := d.Table.Tree(graph.NodeID(dst)), wantTbl.Tree(graph.NodeID(dst))
				for v := range want.Dist {
					if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) ||
						got.Hops[v] != want.Hops[v] ||
						got.NextLink[v] != want.NextLink[v] || got.NextNode[v] != want.NextNode[v] {
						t.Fatalf("%s: tree %d node %d diverged", ctx, dst, v)
					}
				}
			}
			if !d.Quantiser.VerifyOrderPreserved(d.Table) {
				t.Fatalf("%s: delta quantiser order violated", ctx)
			}
			assertStrictDecrease(t, ctx, d, rng)
		}
	}
	if applies < graphs {
		t.Fatalf("only %d applies across %d graphs", applies, graphs)
	}
	if structurals == 0 {
		t.Fatal("no structural edits exercised")
	}
	t.Logf("%d graphs, %d applies, %d edits (%d structural applies)", graphs, applies, editsTotal, structurals)
}

func testCtx(seed int64, step int, edits []graph.Edit) string {
	s := fmt.Sprintf("seed %d step %d:", seed, step)
	for _, e := range edits {
		s += " " + e.String()
	}
	return s
}

// assertStrictDecrease replays the §4.3 termination argument on the
// delta's protocol: along every recycled walk under a sampled failure
// set, successive EventDetect stampings strictly decrease.
func assertStrictDecrease(t *testing.T, ctx string, d *Delta, rng *rand.Rand) {
	t.Helper()
	g := d.Graph
	fails := graph.NewFailureSet()
	if singles := graph.SingleFailureScenarios(g); len(singles) > 0 {
		fails = singles[rng.Intn(len(singles))]
	}
	for src := 0; src < g.NumNodes(); src++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			res := d.Protocol.Walk(graph.NodeID(src), graph.NodeID(dst), fails)
			last := math.Inf(1)
			for _, step := range res.Steps {
				if step.Event != core.EventDetect {
					continue
				}
				if step.Header.DD >= last {
					t.Fatalf("%s: %d→%d DD %v did not decrease below %v under %v",
						ctx, src, dst, step.Header.DD, last, fails)
				}
				last = step.Header.DD
			}
		}
	}
}
