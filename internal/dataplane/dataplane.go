// Package dataplane is the compiled forwarding fast path of the Packet
// Re-cycling reproduction.
//
// The paper's central performance claim (§4, §6) is that PR needs zero
// recomputation at failure time: every table is built offline and the
// per-hop decision is a constant number of table lookups. core.Protocol
// reproduces those semantics faithfully but pays interface dispatch, map
// lookups and per-packet map allocations on every hop — fine for
// experiments, far from "as fast as the hardware allows". This package
// closes that gap in three layers:
//
//   - FIB (fib.go): an offline compiler that flattens a core.Protocol —
//     its route.Table, rotation.System and variant — into dense flat
//     arrays: per-(node,destination) next-hop darts, per-dart
//     cycle-successor (φ) and complementary (σ) darts, and per-pair
//     distance discriminators (exact, plus the rank-quantised wire form
//     of core.Quantiser). A forwarding decision is then a handful of
//     array indexings with zero allocations, bit-identical to
//     core.Protocol.Decide. Compile also selects the wire codec from the
//     quantised bit budget: IPv4 DSCP pool 2 when 3 DD bits suffice, the
//     IPv6 flow label (17 DD bits) for larger diameters and weight-sum
//     discriminators.
//
//   - Wire path (wire.go): forwards real IPv4 and IPv6 packet bytes. The
//     PR mark is decoded from the DSCP pool-2 field or the flow label
//     (package header), the FIB decides in rank space, the mark is
//     re-encoded in place, and the IPv4 header checksum is fixed
//     incrementally (RFC 1624) instead of being recomputed.
//
//   - Engine (engine.go): a sharded forwarding engine — N worker
//     goroutines draining per-shard batch rings, all reading an
//     atomically swapped interface-state snapshot (RCU style), so local
//     failure detection never takes a lock on the hot path.
//
//   - Egress (egress.go): the pipeline's transmit stage. TxQueue gives
//     every dart (link direction) a bounded, link-rate-paced transmit
//     queue mirroring the simulator's linkFree serialisation model, so
//     engine throughput numbers are end-to-end ingest → decide →
//     transmit, with overload surfacing as counted queue drops instead
//     of free pps.
//
// Interface state is a LinkState bitset rather than core's map-backed
// graph.FailureSet: membership tests become single AND instructions and
// snapshots are cheap to copy-on-write.
package dataplane

import (
	"math/bits"

	"recycle/internal/graph"
)

// LinkState is a bitset of failed links, the dataplane's compiled form of
// graph.FailureSet: Down is one shift-and-mask, and the whole state is
// small enough to copy-on-write for RCU snapshots. The zero value is not
// usable; create with NewLinkState or FromFailureSet.
type LinkState struct {
	bits     []uint64
	numLinks int
}

// NewLinkState returns an all-up state for a graph with numLinks links.
func NewLinkState(numLinks int) *LinkState {
	return &LinkState{bits: make([]uint64, (numLinks+63)/64), numLinks: numLinks}
}

// FromFailureSet compiles a graph.FailureSet (nil allowed) into a bitset.
func FromFailureSet(numLinks int, f *graph.FailureSet) *LinkState {
	s := NewLinkState(numLinks)
	if f != nil {
		for _, l := range f.Links() {
			s.Set(l, true)
		}
	}
	return s
}

// Down reports whether link l is failed.
func (s *LinkState) Down(l graph.LinkID) bool {
	return s.bits[uint(l)>>6]&(1<<(uint(l)&63)) != 0
}

// Set marks link l down or up.
func (s *LinkState) Set(l graph.LinkID, down bool) {
	if down {
		s.bits[uint(l)>>6] |= 1 << (uint(l) & 63)
	} else {
		s.bits[uint(l)>>6] &^= 1 << (uint(l) & 63)
	}
}

// NumLinks returns the link-space size the state was built for.
func (s *LinkState) NumLinks() int { return s.numLinks }

// CountDown returns the number of failed links.
func (s *LinkState) CountDown() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy, the unit of RCU copy-on-write.
func (s *LinkState) Clone() *LinkState {
	c := &LinkState{bits: make([]uint64, len(s.bits)), numLinks: s.numLinks}
	copy(c.bits, s.bits)
	return c
}
