package dataplane_test

import (
	"sort"
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// BenchmarkFIBDecideInstrumented is BenchmarkFIBDecide with the engine's
// per-decision accounting applied: one non-atomic tally increment per
// decision, the tally flushed through a CounterBank at batch (256)
// granularity. CI gates it at 0 allocs/op and within the ns/op budget of
// BENCH_baseline.json; TestInstrumentedDecideOverhead pins it against
// the bare decide directly.
func BenchmarkFIBDecideInstrumented(b *testing.B) {
	fib, g, _ := benchFixture(b, "geant")
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	ingress := rotation.DartID(4)
	node := g.Link(rotation.LinkOf(ingress)).B
	dst := graph.NodeID(g.NumNodes() - 1)
	hdr := core.Header{PR: true, DD: 3}

	reg := telemetry.NewRegistry()
	bank := telemetry.NewCounterBank(reg,
		dataplane.MetricEventRoute, dataplane.MetricEventDetect,
		dataplane.MetricEventCycle, dataplane.MetricEventContinue,
		dataplane.MetricEventResume, dataplane.MetricDropNoRoute)
	var tally telemetry.Tally
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decisionSink = fib.Decide(node, dst, ingress, hdr, st)
		// The engine counts at each branch site, where the event class is
		// a compile-time constant (DecideBatchTally); reading the event
		// back out of the returned struct would instead stall on store
		// forwarding and misstate the real accounting cost.
		tally[int(core.EventCycle)]++
		if i&255 == 255 {
			bank.Flush(&tally)
		}
	}
}

// BenchmarkEngineInstrumented is the metered twin of the CI-gated
// BenchmarkEngine shape (geant, 2 shards): the full engine pipeline with
// a live telemetry registry attached. The benchdiff gate holds it to 0
// allocs/op — instrumentation must not add a single allocation to the
// batch path.
func BenchmarkEngineInstrumented(b *testing.B) {
	const batchSize = 256
	fib, g, sys := benchFixture(b, "geant")
	reg := telemetry.NewRegistry()
	free := make(chan *dataplane.Batch, 64)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards:  2,
		OnDone:  func(batch *dataplane.Batch) { free <- batch },
		Metrics: reg,
	})
	eng.SetLink(0, true)
	for i := 0; i < 8; i++ {
		free <- &dataplane.Batch{Pkts: benchWorkload(g, sys, int64(i+1))[:batchSize]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		batch := <-free
		for !eng.Submit(batch) {
		}
	}
	decided := eng.Close()
	b.StopTimer()
	b.ReportMetric(float64(decided)/b.Elapsed().Seconds(), "decisions/s")
}

// pinOverhead measures bare vs instrumented as the median of paired
// ratios: each round times the two sides back to back (alternating the
// order), so slow spells on a shared machine hit both sides of a pair
// equally and cancel in the ratio, and the median discards the rounds a
// scheduler preemption still skews. Returns the fractional overhead and
// the two best per-decision times in nanoseconds (for the log line).
func pinOverhead(bare, instrumented func() float64) (overhead, bestBare, bestInstr float64) {
	bare()
	instrumented() // warm both paths
	const rounds = 25
	ratios := make([]float64, 0, rounds)
	bestBare, bestInstr = 1e18, 1e18
	for round := 0; round < rounds; round++ {
		var b, in float64
		if round&1 == 0 {
			b = bare()
			in = instrumented()
		} else {
			in = instrumented()
			b = bare()
		}
		ratios = append(ratios, in/b)
		if b < bestBare {
			bestBare = b
		}
		if in < bestInstr {
			bestInstr = in
		}
	}
	sort.Float64s(ratios)
	return ratios[rounds/2] - 1, bestBare, bestInstr
}

// TestInstrumentedDecideOverhead pins the tentpole's hot-path budget
// from two angles.
//
// The 5% pin is the issue's acceptance shape: a single forwarding
// decision (the BenchmarkFIBDecide body) with the engine's marginal
// per-decision accounting added — one non-atomic tally increment whose
// index is a constant at the counting site, plus the per-256 bank flush
// and shard counters. That is exactly what a metered decision costs
// over an unmetered one.
//
// The batch pin compares DecideBatch against the full metered batch
// stage (DecideBatchTally + flush). The bare batch loop's fast path is
// ~3ns/decision, so even the handful of amortised atomics per 256
// packets shows up as a few percent; the 20% budget here matches the
// benchdiff gate for BenchmarkEngineInstrumented and exists to catch
// structural regressions (e.g. reintroducing a post-decide sweep over
// the packet structs, which costs >50%).
func TestInstrumentedDecideOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing ratio")
	}
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	fib, g, sys := engineFixture(t)
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	work := benchWorkload(g, sys, 1)
	pkts := make([]dataplane.Packet, len(work))

	reg := telemetry.NewRegistry()
	bank := telemetry.NewCounterBank(reg,
		dataplane.MetricEventRoute, dataplane.MetricEventDetect,
		dataplane.MetricEventCycle, dataplane.MetricEventContinue,
		dataplane.MetricEventResume, dataplane.MetricDropNoRoute)
	decided := reg.Counter(dataplane.MetricDecided).Handle()
	batches := reg.Counter(dataplane.MetricBatches).Handle()
	var tally telemetry.Tally

	ingress := rotation.DartID(4)
	node := g.Link(rotation.LinkOf(ingress)).B
	dst := graph.NodeID(g.NumNodes() - 1)
	hdr := core.Header{PR: true, DD: 3}

	const singleReps = 51200
	overhead, bestBare, bestInstr := pinOverhead(
		func() float64 {
			start := time.Now()
			for i := 0; i < singleReps; i++ {
				decisionSink = fib.Decide(node, dst, ingress, hdr, st)
			}
			return float64(time.Since(start)) / float64(singleReps)
		},
		func() float64 {
			start := time.Now()
			for i := 0; i < singleReps; i++ {
				decisionSink = fib.Decide(node, dst, ingress, hdr, st)
				tally[int(core.EventCycle)]++
				if i&255 == 255 {
					bank.Flush(&tally)
					decided.Add(256)
					batches.Inc()
				}
			}
			return float64(time.Since(start)) / float64(singleReps)
		},
	)
	t.Logf("decision: bare %.2f ns, instrumented %.2f ns — %.1f%% overhead",
		bestBare, bestInstr, 100*overhead)
	if overhead > 0.05 {
		t.Fatalf("per-decision instrumentation overhead %.1f%% exceeds the 5%% budget (bare %.2f ns, instrumented %.2f ns)",
			100*overhead, bestBare, bestInstr)
	}

	const reps = 200 // batches per sample
	overhead, bestBare, bestInstr = pinOverhead(
		func() float64 {
			start := time.Now()
			for r := 0; r < reps; r++ {
				copy(pkts, work)
				fib.DecideBatch(pkts, st)
			}
			return float64(time.Since(start)) / float64(reps*len(pkts))
		},
		func() float64 {
			start := time.Now()
			for r := 0; r < reps; r++ {
				copy(pkts, work)
				fib.DecideBatchTally(pkts, st, (*[telemetry.TallySize]uint64)(&tally))
				bank.Flush(&tally)
				decided.Add(uint64(len(pkts)))
				batches.Inc()
			}
			return float64(time.Since(start)) / float64(reps*len(pkts))
		},
	)
	t.Logf("batch: bare %.2f ns, instrumented %.2f ns per decision — %.1f%% overhead",
		bestBare, bestInstr, 100*overhead)
	if overhead > 0.20 {
		t.Fatalf("batch instrumentation overhead %.1f%% exceeds the 20%% budget (bare %.2f ns, instrumented %.2f ns)",
			100*overhead, bestBare, bestInstr)
	}
}

// compileTracedFixture prebuilds everything BenchmarkCompile prebuilds
// (routing tables, protocol, quantiser) for the traced-compile numbers,
// so the timed region is exactly the compile pipeline.
func compileTracedFixture(tb testing.TB, spec string) (*core.Protocol, *core.Quantiser) {
	tb.Helper()
	tp, err := topo.Generated(spec)
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		tb.Fatal(err)
	}
	tbl := route.BuildWorkers(tp.Graph, route.HopCount, 4)
	p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
	if err != nil {
		tb.Fatal(err)
	}
	return p, core.BuildQuantiserWorkers(tbl, 4)
}

// BenchmarkCompileTraced is BenchmarkCompile/rand:512 with a live span
// tracer and phase histograms attached: per-phase spans, one span per
// worker fill range, and the compile.phase_ns observations. The
// benchdiff gate holds it to the same budget as the bare compile —
// span instrumentation is a handful of ring writes per compile, not a
// per-column cost — and TestTracerOverhead pins the ratio directly.
func BenchmarkCompileTraced(b *testing.B) {
	p, quant := compileTracedFixture(b, "rand:512")
	tracer := telemetry.NewTracer(0)
	reg := telemetry.NewRegistry()
	opts := dataplane.CompileOptions{Workers: 4, Tracer: tracer, Metrics: reg}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataplane.CompileWithOptions(p, quant, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTracerOverhead pins the issue's acceptance bound: compiling with
// the span tracer and phase histograms attached must cost ≤5% over the
// bare compile. Measured as the median of paired ratios (pinOverhead),
// so shared-machine noise cancels; the span count per compile is fixed
// (one root, one per phase, one per worker range), so the overhead is
// a constant handful of clock reads and ring writes against ~2ms of
// compile.
func TestTracerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing ratio")
	}
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	p, quant := compileTracedFixture(t, "rand:512")
	bareOpts := dataplane.CompileOptions{Workers: 4}
	tracer := telemetry.NewTracer(0)
	reg := telemetry.NewRegistry()
	tracedOpts := dataplane.CompileOptions{Workers: 4, Tracer: tracer, Metrics: reg}

	compile := func(opts dataplane.CompileOptions) float64 {
		start := time.Now()
		if _, err := dataplane.CompileWithOptions(p, quant, opts); err != nil {
			t.Fatal(err)
		}
		return float64(time.Since(start))
	}
	// A compile is ~2ms — long enough that pinOverhead's one-shot pairs
	// straddle load changes when the suite runs alongside other test
	// binaries. Same paired/alternating/median design, but each side of
	// a round is the min of 3 finely-interleaved compiles, so a noisy
	// neighbour must stall every repetition of one side and none of the
	// other to skew a ratio.
	compile(bareOpts)
	compile(tracedOpts) // warm both paths
	const rounds = 25
	ratios := make([]float64, 0, rounds)
	bestBare, bestTraced := 1e18, 1e18
	for round := 0; round < rounds; round++ {
		minBare, minTraced := 1e18, 1e18
		for k := 0; k < 3; k++ {
			var b, tr float64
			if (round+k)&1 == 0 {
				b = compile(bareOpts)
				tr = compile(tracedOpts)
			} else {
				tr = compile(tracedOpts)
				b = compile(bareOpts)
			}
			if b < minBare {
				minBare = b
			}
			if tr < minTraced {
				minTraced = tr
			}
		}
		ratios = append(ratios, minTraced/minBare)
		if minBare < bestBare {
			bestBare = minBare
		}
		if minTraced < bestTraced {
			bestTraced = minTraced
		}
	}
	sort.Float64s(ratios)
	median := ratios[rounds/2] - 1
	best := bestTraced/bestBare - 1
	// Two estimators of the same overhead: the median of paired ratios
	// and the ratio of best-of-run times. Contention noise is strictly
	// additive and can inflate either one on an oversubscribed box, but
	// a real regression is baked into every sample and inflates both —
	// so gate on whichever reads lower.
	overhead := median
	if best < overhead {
		overhead = best
	}
	t.Logf("compile: bare %.0f ns, traced %.0f ns — %.1f%% overhead (median %.1f%%, best-ratio %.1f%%)",
		bestBare, bestTraced, 100*overhead, 100*median, 100*best)
	if overhead > 0.05 {
		t.Fatalf("span instrumentation overhead %.1f%% exceeds the 5%% budget (bare %.0f ns, traced %.0f ns)",
			100*overhead, bestBare, bestTraced)
	}
	if snap := tracer.SpanSnapshot(); len(snap.Spans) == 0 {
		t.Fatal("traced compiles produced no spans — the instrumented side measured nothing")
	}
}

// TestDecideBatchTallyMatchesDecideBatch proves the metered batch stage
// is the bare one plus counting: identical per-packet decisions, and a
// tally that recounts the decided batch exactly — including slow-path
// packets forced by a failed link and refusals (dst == node packets on
// an isolated node have no usable egress only when links fail; refusals
// are counted under slot 5).
func TestDecideBatchTallyMatchesDecideBatch(t *testing.T) {
	fib, g, sys := engineFixture(t)
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0, 3))
	for seed := int64(1); seed <= 4; seed++ {
		work := benchWorkload(g, sys, seed)
		want := append([]dataplane.Packet(nil), work...)
		fib.DecideBatch(want, st)

		got := append([]dataplane.Packet(nil), work...)
		var tally [telemetry.TallySize]uint64
		fib.DecideBatchTally(got, st, &tally)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: packet %d decided differently: got %+v, want %+v", seed, i, got[i], want[i])
			}
		}
		var recount [telemetry.TallySize]uint64
		for i := range want {
			if want[i].OK {
				recount[int(want[i].Event)&(telemetry.TallySize-1)]++
			} else {
				recount[5]++
			}
		}
		if tally != recount {
			t.Fatalf("seed %d: tally %v, recount from decisions %v", seed, tally, recount)
		}
	}
}
