package dataplane

import "recycle/internal/graph"

// coalesceEdits reduces an edit batch over g to its net effect: weight
// edits are last-write-wins per link (and dropped entirely when the
// final weight equals the current one), a link added and later removed
// in the same batch cancels to nothing, and a removed original link
// swallows every weight edit it received first.
//
// Soundness: the recompiled state is a canonical function of the final
// (graph, rotation orders, discriminator) alone — trees are canonical
// Dijkstra, ranks and FIB columns are derived from them — so any edit
// sequence reaching the same final graph with the same final link
// numbering and orders recompiles bit-identically; intermediate states
// can flip tie-breaks only *during* the batch, never in its result.
// graph.ApplyEdit's removal renumbering is an order-preserving
// compaction and its adds append, so the net sequence emitted here —
// weights on current IDs, then removals in increasing (adjusted) ID
// order, then surviving adds in batch order — reproduces the replay's
// final numbering exactly. The one case where numbering equivalence is
// not self-evident is a surviving add parallel to a surviving link
// between the same endpoints (FindLink tie-breaks by smallest ID);
// coalesceEdits refuses those conservatively.
//
// It returns ok=false — caller replays the original batch — when the
// batch is too small to shrink, nets to no reduction, hits a validation
// error (replay surfaces the identical error), or trips the parallel-
// link guard. ok=true with an empty net means the batch cancels out
// entirely: the caller's state is already the final state.
func coalesceEdits(g *graph.Graph, edits []graph.Edit) (net []graph.Edit, ok bool) {
	if len(edits) < 2 {
		return nil, false
	}
	type addRec struct {
		a, b graph.NodeID
		w    float64
		dead bool
	}
	type linkOrigin struct {
		orig graph.LinkID // original link ID, or NoLink for batch adds
		add  int          // index into adds, or -1 for originals
	}
	nOrig := g.NumLinks()
	origin := make([]linkOrigin, nOrig)
	for i := range origin {
		origin[i] = linkOrigin{orig: graph.LinkID(i), add: -1}
	}
	removed := make([]bool, nOrig)
	weight := make([]float64, nOrig)
	weightSet := make([]bool, nOrig)
	var adds []addRec

	// Simulate the chain to track, per current link ID, where the link
	// came from; the graph replay also validates every edit.
	cur := g
	for _, e := range edits {
		next, m, err := graph.ApplyEdit(cur, e)
		if err != nil {
			return nil, false
		}
		switch e.Kind {
		case graph.EditWeight:
			o := origin[e.Link]
			if o.add >= 0 {
				adds[o.add].w = e.Weight
			} else {
				weight[o.orig] = e.Weight
				weightSet[o.orig] = true
			}
		case graph.EditAddLink:
			adds = append(adds, addRec{a: e.A, b: e.B, w: e.Weight})
			origin = append(origin, linkOrigin{orig: graph.NoLink, add: len(adds) - 1})
		case graph.EditRemoveLink:
			o := origin[e.Link]
			if o.add >= 0 {
				adds[o.add].dead = true
			} else {
				removed[o.orig] = true
			}
			// Removal compacts IDs preserving order, so filtering origin
			// by survival reproduces the new numbering.
			kept := origin[:0]
			for i, rec := range origin {
				if m[i] != graph.NoLink {
					kept = append(kept, rec)
				}
			}
			origin = kept
		}
		cur = next
	}

	// Parallel-link guard: a surviving add whose endpoints still carry
	// another surviving link (original or added) would rely on relative-
	// ID reasoning across parallel links; replay instead.
	type pair struct{ a, b graph.NodeID }
	norm := func(a, b graph.NodeID) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	surviving := make(map[pair]bool, nOrig)
	for l := 0; l < nOrig; l++ {
		if !removed[l] {
			lk := g.Link(graph.LinkID(l))
			surviving[norm(lk.A, lk.B)] = true
		}
	}
	for _, a := range adds {
		if a.dead {
			continue
		}
		p := norm(a.a, a.b)
		if surviving[p] {
			return nil, false
		}
		surviving[p] = true
	}

	for l := 0; l < nOrig; l++ {
		if removed[l] || !weightSet[l] {
			continue
		}
		if weight[l] != g.Weight(graph.LinkID(l)) {
			net = append(net, graph.SetWeight(graph.LinkID(l), weight[l]))
		}
	}
	shift := graph.LinkID(0)
	for l := 0; l < nOrig; l++ {
		if !removed[l] {
			continue
		}
		// Each earlier emitted removal compacted the IDs above it down by
		// one; all targets are originals (adds come after), so the
		// adjustment is a running shift.
		net = append(net, graph.RemoveLinkEdit(graph.LinkID(l)-shift))
		shift++
	}
	for _, a := range adds {
		if a.dead {
			continue
		}
		net = append(net, graph.AddLinkEdit(a.a, a.b, a.w))
	}
	if len(net) >= len(edits) {
		return nil, false
	}
	return net, true
}
