package dataplane_test

import (
	"net/netip"
	"sync"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

func engineFixture(t testing.TB) (*dataplane.FIB, *graph.Graph, *rotation.System) {
	t.Helper()
	tp := topo.Geant(topo.DistanceWeights)
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p := buildProtocol(t, tp.Graph, sys, route.HopCount, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return fib, tp.Graph, sys
}

// TestEngineMatchesDecide: every packet decided by the sharded engine must
// match a direct FIB.Decide against the same link state.
func TestEngineMatchesDecide(t *testing.T) {
	fib, g, sys := engineFixture(t)

	var mu sync.Mutex
	var done []*dataplane.Batch
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 4,
		OnDone: func(b *dataplane.Batch) {
			mu.Lock()
			done = append(done, b)
			mu.Unlock()
		},
	})
	eng.SetLink(1, true)
	eng.SetLink(7, true)
	st := eng.Snapshot()

	// One packet per (node, dst) pair, plus cycle-following arrivals on
	// every ingress interface.
	var pkts []dataplane.Packet
	for node := 0; node < g.NumNodes(); node++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			pkts = append(pkts, dataplane.Packet{
				Node: graph.NodeID(node), Dst: graph.NodeID(dst), Ingress: rotation.NoDart,
			})
			for _, nb := range g.Neighbors(graph.NodeID(node)) {
				in := rotation.ReverseID(sys.OutgoingDart(graph.NodeID(node), nb.Link))
				pkts = append(pkts, dataplane.Packet{
					Node: graph.NodeID(node), Dst: graph.NodeID(dst), Ingress: in,
					Hdr: core.Header{PR: true, DD: 3},
				})
			}
		}
	}
	want := make([]core.Decision, len(pkts))
	for i, p := range pkts {
		want[i] = fib.Decide(p.Node, p.Dst, p.Ingress, p.Hdr, st)
	}

	const batchSize = 64
	submitted := 0
	for off := 0; off < len(pkts); off += batchSize {
		end := off + batchSize
		if end > len(pkts) {
			end = len(pkts)
		}
		b := &dataplane.Batch{Pkts: make([]dataplane.Packet, end-off)}
		copy(b.Pkts, pkts[off:end])
		for !eng.Submit(b) {
		}
		submitted += len(b.Pkts)
	}
	if got := eng.Close(); got != uint64(submitted) {
		t.Fatalf("engine decided %d packets, submitted %d", got, submitted)
	}

	checked := 0
	for _, b := range done {
		for _, p := range b.Pkts {
			w := want[indexOf(pkts, p)]
			got := core.Decision{Egress: p.Egress, Event: p.Event, Header: p.Hdr, OK: p.OK}
			if got != w {
				t.Fatalf("engine decision for %d→%d (in=%d) = %+v, want %+v", p.Node, p.Dst, p.Ingress, got, w)
			}
			checked++
		}
	}
	if checked != submitted {
		t.Fatalf("OnDone delivered %d packets, submitted %d", checked, submitted)
	}
}

// indexOf locates a decided packet's original by its immutable key fields.
func indexOf(pkts []dataplane.Packet, p dataplane.Packet) int {
	for i := range pkts {
		if pkts[i].Node == p.Node && pkts[i].Dst == p.Dst && pkts[i].Ingress == p.Ingress {
			return i
		}
	}
	return -1
}

// TestEngineConcurrentStateSwaps hammers SetLink from a writer while
// batches stream through: the run must stay race-free (go test -race) and
// account for every packet.
func TestEngineConcurrentStateSwaps(t *testing.T) {
	fib, g, _ := engineFixture(t)
	var doneCount int
	var mu sync.Mutex
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 4,
		OnDone: func(b *dataplane.Batch) {
			mu.Lock()
			doneCount += len(b.Pkts)
			mu.Unlock()
		},
	})

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		down := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			down = !down
			eng.SetLink(graph.LinkID(0), down)
			eng.SetLink(graph.LinkID(3), !down)
		}
	}()

	const batches = 200
	submitted := 0
	for i := 0; i < batches; i++ {
		b := &dataplane.Batch{Pkts: make([]dataplane.Packet, 32)}
		for j := range b.Pkts {
			b.Pkts[j] = dataplane.Packet{
				Node: graph.NodeID((i + j) % g.NumNodes()),
				Dst:  graph.NodeID((i * 3) % g.NumNodes()),
			}
		}
		for !eng.Submit(b) {
		}
		submitted += 32
	}
	decided := eng.Close()
	close(stop)
	flapper.Wait()
	if decided != uint64(submitted) {
		t.Fatalf("decided %d, submitted %d", decided, submitted)
	}
	if doneCount != submitted {
		t.Fatalf("OnDone saw %d, submitted %d", doneCount, submitted)
	}
}

// TestEngineSubmitAfterClose: a closed engine refuses work.
func TestEngineSubmitAfterClose(t *testing.T) {
	fib, _, _ := engineFixture(t)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{Shards: 1})
	eng.Close()
	if eng.Submit(&dataplane.Batch{Pkts: make([]dataplane.Packet, 1)}) {
		t.Fatal("Submit succeeded after Close")
	}
}

// TestEngineWireBatches: raw frames submitted through a batch's Wire plane
// are forwarded by the workers — verdicts match a direct ForwardWire on an
// identical frame, and the decision counter includes them.
func TestEngineWireBatches(t *testing.T) {
	fib, g, _ := engineFixture(t)

	var mu sync.Mutex
	var done []*dataplane.Batch
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 2,
		OnDone: func(b *dataplane.Batch) {
			mu.Lock()
			done = append(done, b)
			mu.Unlock()
		},
	})

	const batches = 16
	const perBatch = 8
	for i := 0; i < batches; i++ {
		b := &dataplane.Batch{Wire: make([]dataplane.WirePacket, perBatch)}
		for j := range b.Wire {
			src := graph.NodeID((i + j) % g.NumNodes())
			dst := graph.NodeID((i + 3*j + 1) % g.NumNodes())
			b.Wire[j] = dataplane.WirePacket{
				Node:    src,
				Ingress: rotation.NoDart,
				Buf:     mkPacket(t, src, dst, 64),
			}
		}
		if !eng.Submit(b) {
			t.Fatal("submit refused")
		}
	}
	if got := eng.Close(); got != batches*perBatch {
		t.Fatalf("decided %d frames; want %d", got, batches*perBatch)
	}
	st := dataplane.FromFailureSet(g.NumLinks(), nil)
	checked := 0
	for _, b := range done {
		for _, w := range b.Wire {
			src := w.Node
			dst := dataplane.NodeOfAddr(netip.AddrFrom4([4]byte(w.Buf[16:20])))
			fresh := mkPacket(t, src, dst, 64)
			wantEg, wantV := fib.ForwardWire(src, rotation.NoDart, st, fresh)
			if w.Verdict != wantV || w.Egress != wantEg {
				t.Fatalf("frame %d→%d: engine verdict %v egress %d, direct %v %d",
					src, dst, w.Verdict, w.Egress, wantV, wantEg)
			}
			checked++
		}
	}
	if checked != batches*perBatch {
		t.Fatalf("checked %d frames; want %d", checked, batches*perBatch)
	}
}
