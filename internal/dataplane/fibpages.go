package dataplane

import (
	"math"
	"slices"
	"sync"

	"recycle/internal/core"
)

// Shared-column FIB storage.
//
// Whole destination columns can never be deduplicated on a connected
// graph: the column toward dst holds the sentinel entries (-1 next dart,
// rank 0) at row dst itself, so two equal columns would claim some other
// destination cannot be reached from dst — a contradiction. What *does*
// repeat on sparse topologies is column *content away from the
// destination*: long stretches of nodes route toward faraway
// destinations through the same egress darts with the same rank pattern.
// The shared representation therefore splits every column into fixed
// power-of-two pages of rows, content-hashes each page and interns it in
// a per-plane slab store shared by all columns; the per-(dst, page)
// pointer table is what a column "is". The recompiler copies a clone's
// pointer tables (cheap) and gives a page a private copy only when it
// actually writes into it, so a patched FIB shares every untouched page
// with the generation the engine is still forwarding on.
//
// Two further compressions, both exact:
//   - ranks are stored as uint16 (ranks are < numNodes, and shared
//     columns are only used below 2^16 nodes), halving the ddq plane;
//   - the raw dd plane is dropped entirely whenever it is derivable from
//     the ranks — quantised protocols stamp ranks into Header.DD, and a
//     hop-count discriminator's rank *is* its hop count — leaving only
//     non-quantised weight-sum FIBs paying for float64 pages.
type fibPages struct {
	pageBits uint // log2 of the page size in rows
	pageMask int  // page size − 1
	perCol   int  // pages per destination column: ceil(numNodes / pageSize)

	// Pointer tables, indexed dst*perCol + node>>pageBits. Entries alias
	// interned slab segments or private copy-on-write pages.
	nd  [][]int32
	ddq [][]uint16
	dd  [][]float64 // nil when dd is derivable from ddq (see ddAt)
}

// rank16Unreachable is core.RankUnreachable narrowed to the uint16 rank
// pages. Ranks are < numNodes < 2^16 in shared mode, so the sentinel
// cannot collide with a real rank.
const rank16Unreachable = ^uint16(0)

const (
	// defaultPageSize balances dedup hit rate (smaller pages match more
	// often) against pointer-table overhead (24 bytes per table entry).
	defaultPageSize = 128
	// sharedAutoMinNodes is where ColumnsAuto switches to shared pages:
	// below it the dense planes are at most a few MB and the extra
	// indirection buys nothing.
	sharedAutoMinNodes = 512
)

func rank16(r uint32) uint16 {
	if r == core.RankUnreachable {
		return rank16Unreachable
	}
	return uint16(r)
}

func newFIBPages(numNodes, pageSize int, rawDD bool) *fibPages {
	bits := uint(0)
	for 1<<(bits+1) <= pageSize {
		bits++
	}
	size := 1 << bits
	perCol := (numNodes + size - 1) / size
	pg := &fibPages{
		pageBits: bits,
		pageMask: size - 1,
		perCol:   perCol,
		nd:       make([][]int32, numNodes*perCol),
		ddq:      make([][]uint16, numNodes*perCol),
	}
	if rawDD {
		pg.dd = make([][]float64, numNodes*perCol)
	}
	return pg
}

// ndAt/ddqAt/ddAt are the paged halves of the FIB accessors.

func (p *fibPages) ndAt(node, dst int) int32 {
	return p.nd[dst*p.perCol+node>>p.pageBits][node&p.pageMask]
}

func (p *fibPages) ddqAt(node, dst int) uint32 {
	q := p.ddq[dst*p.perCol+node>>p.pageBits][node&p.pageMask]
	if q == rank16Unreachable {
		return core.RankUnreachable
	}
	return uint32(q)
}

func (p *fibPages) ddAt(node, dst int) float64 {
	if p.dd != nil {
		return p.dd[dst*p.perCol+node>>p.pageBits][node&p.pageMask]
	}
	// Derived: in both modes that drop the plane (quantised stamps, hop
	// count) the abstract discriminator is exactly float64(rank).
	q := p.ddq[dst*p.perCol+node>>p.pageBits][node&p.pageMask]
	if q == rank16Unreachable {
		return math.Inf(1)
	}
	return float64(q)
}

// pageSpan returns the row range [lo, hi) page pi of a column covers.
func (p *fibPages) pageSpan(pi, numNodes int) (lo, hi int) {
	lo = pi << p.pageBits
	hi = lo + p.pageMask + 1
	if hi > numNodes {
		hi = numNodes
	}
	return lo, hi
}

// clone copies the pointer tables (the CoW unit). shareDD additionally
// aliases the discriminator tables themselves — no destination will be
// re-ranked, so not even their table entries can change.
func (p *fibPages) clone(shareDD bool) *fibPages {
	c := &fibPages{pageBits: p.pageBits, pageMask: p.pageMask, perCol: p.perCol}
	c.nd = append([][]int32(nil), p.nd...)
	if shareDD {
		c.ddq, c.dd = p.ddq, p.dd
	} else {
		c.ddq = append([][]uint16(nil), p.ddq...)
		if p.dd != nil {
			c.dd = append([][]float64(nil), p.dd...)
		}
	}
	return c
}

// pageStore interns pages of one plane type: content-hash to candidate
// list, full compare to rule out collisions, copy into the shared slab on
// first sight. Safe for concurrent intern calls from compile workers.
type pageStore[T int32 | uint16 | float64] struct {
	mu   sync.Mutex
	hash func([]T) uint64
	m    map[uint64][][]T
	slab []T
}

// slabChunk is the slab growth quantum in elements.
const slabChunk = 1 << 16

func newPageStore[T int32 | uint16 | float64](hash func([]T) uint64) *pageStore[T] {
	return &pageStore[T]{hash: hash, m: make(map[uint64][][]T)}
}

func (s *pageStore[T]) intern(page []T) []T {
	h := s.hash(page)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cand := range s.m[h] {
		if slices.Equal(cand, page) {
			return cand
		}
	}
	if cap(s.slab)-len(s.slab) < len(page) {
		n := slabChunk
		if len(page) > n {
			n = len(page)
		}
		s.slab = make([]T, 0, n)
	}
	off := len(s.slab)
	s.slab = append(s.slab, page...)
	cp := s.slab[off:len(s.slab):len(s.slab)]
	s.m[h] = append(s.m[h], cp)
	return cp
}

// FNV-1a over the element bits, per plane type.

func hashInt32s(p []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range p {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

func hashUint16s(p []uint16) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range p {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func hashFloat64s(p []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range p {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

// pageStores bundles the three per-plane interners of one compile.
type pageStores struct {
	nd  *pageStore[int32]
	ddq *pageStore[uint16]
	dd  *pageStore[float64]
}

func newPageStores() *pageStores {
	return &pageStores{
		nd:  newPageStore(hashInt32s),
		ddq: newPageStore(hashUint16s),
		dd:  newPageStore(hashFloat64s),
	}
}

// colScratch is one compile worker's reusable column buffer.
type colScratch struct {
	nd  []int32
	ddq []uint16
	dd  []float64 // nil unless the FIB keeps a raw dd plane
}

func newColScratch(numNodes int, rawDD bool) *colScratch {
	sc := &colScratch{
		nd:  make([]int32, numNodes),
		ddq: make([]uint16, numNodes),
	}
	if rawDD {
		sc.dd = make([]float64, numNodes)
	}
	return sc
}

// setColumn interns a computed column's pages into the stores and points
// the dst column at them. The scratch stays owned by the caller.
func (p *fibPages) setColumn(dst, numNodes int, sc *colScratch, st *pageStores) {
	for pi := 0; pi < p.perCol; pi++ {
		lo, hi := p.pageSpan(pi, numNodes)
		slot := dst*p.perCol + pi
		p.nd[slot] = st.nd.intern(sc.nd[lo:hi])
		p.ddq[slot] = st.ddq.intern(sc.ddq[lo:hi])
		if p.dd != nil {
			p.dd[slot] = st.dd.intern(sc.dd[lo:hi])
		}
	}
}

// adoptColumn points the dst column at pages sliced straight out of
// freshly allocated buffers — the recompiler's private-column fill: no
// interning (a patched column rarely repeats) and no copying.
func (p *fibPages) adoptColumn(dst, numNodes int, nd []int32, ddq []uint16, dd []float64) {
	for pi := 0; pi < p.perCol; pi++ {
		lo, hi := p.pageSpan(pi, numNodes)
		slot := dst*p.perCol + pi
		if nd != nil {
			p.nd[slot] = nd[lo:hi:hi]
		}
		if ddq != nil {
			p.ddq[slot] = ddq[lo:hi:hi]
		}
		if dd != nil {
			p.dd[slot] = dd[lo:hi:hi]
		}
	}
}

// MemBytes reports the FIB's resident footprint in bytes: payload bytes
// of every distinct page (shared pages counted once) plus pointer-table
// headers, or the dense planes verbatim, plus the dart permutation
// tables either way. It walks the pointer tables, so call it at compile
// and swap time, not per packet.
func (f *FIB) MemBytes() int64 {
	const sliceHeader = 24
	total := int64(len(f.faceNext)+len(f.sigma)+len(f.head)) * 4
	if f.pages == nil {
		return total + int64(len(f.nextDart))*4 + int64(len(f.dd))*8 + int64(len(f.ddQ))*4
	}
	pg := f.pages
	total += int64(len(pg.nd)+len(pg.ddq)+len(pg.dd)) * sliceHeader
	seenND := make(map[*int32]struct{}, len(pg.nd))
	for _, p := range pg.nd {
		if len(p) == 0 {
			continue
		}
		if _, ok := seenND[&p[0]]; !ok {
			seenND[&p[0]] = struct{}{}
			total += int64(len(p)) * 4
		}
	}
	seenQ := make(map[*uint16]struct{}, len(pg.ddq))
	for _, p := range pg.ddq {
		if len(p) == 0 {
			continue
		}
		if _, ok := seenQ[&p[0]]; !ok {
			seenQ[&p[0]] = struct{}{}
			total += int64(len(p)) * 2
		}
	}
	seenDD := make(map[*float64]struct{}, len(pg.dd))
	for _, p := range pg.dd {
		if len(p) == 0 {
			continue
		}
		if _, ok := seenDD[&p[0]]; !ok {
			seenDD[&p[0]] = struct{}{}
			total += int64(len(p)) * 8
		}
	}
	return total
}

// SharedColumns reports whether the FIB uses the shared-column page
// representation (false: dense planes).
func (f *FIB) SharedColumns() bool { return f.pages != nil }
