package dataplane_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
)

// virtualClock is a deterministic TxConfig.Now for pacing tests.
type virtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *virtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// TestTxQueuePacing: packets on one dart serialise FIFO at the link
// rate; the backlog grows by exactly one serialisation time per packet
// and drains as the clock advances.
func TestTxQueuePacing(t *testing.T) {
	clk := &virtualClock{}
	reg := telemetry.NewRegistry()
	q := dataplane.NewTxQueueDarts(4, dataplane.TxConfig{
		BandwidthBps: 8_192_000, // 8192-bit packets: 1 ms each
		MaxBacklog:   10 * time.Millisecond,
		Now:          clk.Now,
		Metrics:      reg,
	})
	for i := 1; i <= 5; i++ {
		if v := q.Send(2, 8192, nil); v != dataplane.TxSent {
			t.Fatalf("packet %d: verdict %v; want sent", i, v)
		}
		if got, want := q.Backlog(2), time.Duration(i)*time.Millisecond; got != want {
			t.Fatalf("backlog after %d packets = %v; want %v", i, got, want)
		}
	}
	// Other darts are independent.
	if q.Backlog(3) != 0 {
		t.Fatalf("dart 3 backlog = %v; want 0", q.Backlog(3))
	}
	// Draining: after 3 ms the backlog has shrunk accordingly.
	clk.Advance(3 * time.Millisecond)
	if got := q.Backlog(2); got != 2*time.Millisecond {
		t.Fatalf("backlog after drain = %v; want 2ms", got)
	}
	st := reg.Snapshot()
	if st.Counter(dataplane.MetricTxSent) != 5 || st.Counter(dataplane.MetricTxSentBits) != 5*8192 || dataplane.TxDropped(st) != 0 {
		t.Fatalf("stats = %+v; want 5 sent, none dropped", st.Counters)
	}
}

// TestTxQueueBoundedDrop: a queue never waits longer than MaxBacklog;
// the overflow packet is counted, and the queue accepts again once it
// drains.
func TestTxQueueBoundedDrop(t *testing.T) {
	clk := &virtualClock{}
	reg := telemetry.NewRegistry()
	q := dataplane.NewTxQueueDarts(2, dataplane.TxConfig{
		BandwidthBps: 8_192_000, // 1 ms per 8192-bit packet
		MaxBacklog:   3 * time.Millisecond,
		Now:          clk.Now,
		Metrics:      reg,
	})
	sent, dropped := 0, 0
	for i := 0; i < 10; i++ {
		if q.Send(0, 8192, nil) == dataplane.TxSent {
			sent++
		} else {
			dropped++
		}
	}
	// Backlog bound 3 ms at 1 ms per packet: the queue holds the packet
	// in service plus three waiting.
	if sent != 4 || dropped != 6 {
		t.Fatalf("sent/dropped = %d/%d; want 4/6", sent, dropped)
	}
	if got := reg.Snapshot().Counter(dataplane.MetricTxDropQueueFull); got != 6 {
		t.Fatalf("queue-full drops = %d; want 6", got)
	}
	// After the queue drains, transmission resumes.
	clk.Advance(4 * time.Millisecond)
	if v := q.Send(0, 8192, nil); v != dataplane.TxSent {
		t.Fatalf("post-drain verdict %v; want sent", v)
	}
}

// TestTxQueueLinkDownDrop: transmitting onto a down link is refused and
// counted, and does not advance the dart's clock.
func TestTxQueueLinkDownDrop(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := dataplane.NewTxQueueDarts(4, dataplane.TxConfig{Now: func() time.Duration { return 0 }, Metrics: reg})
	st := dataplane.NewLinkState(2)
	st.Set(1, true)
	if v := q.Send(2, 8192, st); v != dataplane.TxDropLinkDown { // dart 2 = link 1
		t.Fatalf("verdict %v; want drop-link-down", v)
	}
	if v := q.Send(3, 8192, st); v != dataplane.TxDropLinkDown {
		t.Fatalf("reverse dart verdict %v; want drop-link-down", v)
	}
	if v := q.Send(0, 8192, st); v != dataplane.TxSent { // link 0 is up
		t.Fatalf("up-link verdict %v; want sent", v)
	}
	s := reg.Snapshot()
	if s.Counter(dataplane.MetricTxDropLinkDown) != 2 || s.Counter(dataplane.MetricTxSent) != 1 {
		t.Fatalf("stats = %+v; want 2 link-down drops, 1 sent", s.Counters)
	}
	if q.Backlog(2) != 0 {
		t.Fatal("dropped packets must not occupy the queue")
	}
}

// TestTxQueueZeroAllocs: the transmit hot path allocates nothing, batch
// and single-packet forms alike.
func TestTxQueueZeroAllocs(t *testing.T) {
	fib, _, _ := engineFixture(t)
	q := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: 1e12})
	st := dataplane.NewLinkState(fib.NumLinks())
	b := &dataplane.Batch{Pkts: make([]dataplane.Packet, 64)}
	for i := range b.Pkts {
		b.Pkts[i] = dataplane.Packet{Egress: rotation.DartID(i % (2 * fib.NumLinks())), OK: true, Bits: 8192}
	}
	if n := testing.AllocsPerRun(100, func() { q.Transmit(b, st) }); n != 0 {
		t.Fatalf("Transmit allocates %v per op; want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { q.Send(0, 8192, st) }); n != 0 {
		t.Fatalf("Send allocates %v per op; want 0", n)
	}
}

// TestTxQueueConcurrentCounts: concurrent senders from many goroutines
// (the engine's shards) lose no packet to races — every send is
// accounted, and per-dart virtual time stays consistent. Run with -race
// in CI.
func TestTxQueueConcurrentCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := dataplane.NewTxQueueDarts(8, dataplane.TxConfig{
		BandwidthBps: 1e12, // fast links: nothing drops
		MaxBacklog:   time.Second,
		Metrics:      reg,
	})
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q.Send(rotation.DartID((g+i)%8), 8192, nil)
			}
		}(g)
	}
	wg.Wait()
	st := reg.Snapshot()
	sent := st.Counter(dataplane.MetricTxSent)
	if total := sent + dataplane.TxDropped(st); total != goroutines*perG {
		t.Fatalf("accounted %d sends; want %d", total, goroutines*perG)
	}
	if st.Counter(dataplane.MetricTxSentBits) != sent*8192 {
		t.Fatalf("sent bits %d inconsistent with %d sends", st.Counter(dataplane.MetricTxSentBits), sent)
	}
}

// TestEngineEgressIntegration: an engine configured with a TxQueue
// transmits exactly the packets it decided OK — the end-to-end pipeline
// conserves packets: every decision is either transmitted or refused,
// none vanish between the stages.
func TestEngineEgressIntegration(t *testing.T) {
	fib, g, sys := engineFixture(t)
	reg := telemetry.NewRegistry()
	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{
		BandwidthBps: 1e12, // ample: queue drops would confuse the count
		MaxBacklog:   time.Second,
		Metrics:      reg,
	})
	results := make(chan *dataplane.Batch, 64)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 2,
		Egress: tx,
		OnDone: func(b *dataplane.Batch) { results <- b },
	})
	const batches = 50
	go func() {
		for i := 0; i < batches; i++ {
			b := &dataplane.Batch{Pkts: engineWorkload(g, sys, int64(i))}
			for !eng.Submit(b) {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	decidedOK := 0
	for i := 0; i < batches; i++ {
		b := <-results
		for j := range b.Pkts {
			if b.Pkts[j].OK {
				decidedOK++
			}
		}
	}
	eng.Close()
	st := reg.Snapshot()
	if sent := st.Counter(dataplane.MetricTxSent); int(sent) != decidedOK {
		t.Fatalf("egress sent %d; engine decided %d OK", sent, decidedOK)
	}
	if dataplane.TxDropped(st) != 0 {
		t.Fatalf("unexpected egress drops: %+v", st.Counters)
	}
}

// engineWorkload mirrors the bench workload: a deterministic mixed batch
// with concrete ingress darts and explicit wire sizes.
func engineWorkload(g *graph.Graph, sys *rotation.System, seed int64) []dataplane.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]dataplane.Packet, 128)
	for i := range pkts {
		node := graph.NodeID(rng.Intn(g.NumNodes()))
		nbrs := g.Neighbors(node)
		nb := nbrs[rng.Intn(len(nbrs))]
		pkts[i] = dataplane.Packet{
			Node:    node,
			Dst:     graph.NodeID(rng.Intn(g.NumNodes())),
			Ingress: rotation.ReverseID(sys.OutgoingDart(node, nb.Link)),
			Bits:    8192,
			Hdr:     core.Header{PR: rng.Intn(4) == 0, DD: float64(rng.Intn(8))},
		}
	}
	return pkts
}

// TestTxCollectorsAccumulate is the regression test for the tx.*
// collector collision: two TxQueues sharing one registry (an engine
// rebuild, a soak restart) must *sum* into the tx.* counters. The
// pre-fix collectors SetCounter'd the same names, so the snapshot
// reported only whichever queue's collector ran last.
func TestTxCollectorsAccumulate(t *testing.T) {
	reg := telemetry.NewRegistry()
	now := func() time.Duration { return 0 }
	q1 := dataplane.NewTxQueueDarts(2, dataplane.TxConfig{Metrics: reg, Now: now, BandwidthBps: 1e12})
	q2 := dataplane.NewTxQueueDarts(2, dataplane.TxConfig{Metrics: reg, Now: now, BandwidthBps: 1e12})

	for i := 0; i < 3; i++ {
		if v := q1.Send(0, 8192, nil); v != dataplane.TxSent {
			t.Fatalf("q1 send: %v", v)
		}
	}
	for i := 0; i < 5; i++ {
		if v := q2.Send(1, 8192, nil); v != dataplane.TxSent {
			t.Fatalf("q2 send: %v", v)
		}
	}

	s := reg.Snapshot()
	if got := s.Counter(dataplane.MetricTxSent); got != 8 {
		t.Fatalf("tx.sent = %d; want 8 (3 from q1 + 5 from q2, not last-writer-wins)", got)
	}
	if got := s.Counter(dataplane.MetricTxSentBits); got != 8*8192 {
		t.Fatalf("tx.sent_bits = %d; want %d", got, 8*8192)
	}
}

// TestTxQueueRebindCarriesPacing: RebindDarts carries surviving links'
// pacing clocks into the new generation (a busy queue keeps draining at
// the link rate, it does not reset to idle), drops removed links'
// state, and keeps retired-generation counts visible in Stats.
func TestTxQueueRebindCarriesPacing(t *testing.T) {
	now := func() time.Duration { return 0 }
	reg := telemetry.NewRegistry()
	q := dataplane.NewTxQueueDarts(4, dataplane.TxConfig{
		BandwidthBps: 8192, // 1 packet of 8192 bits per second
		MaxBacklog:   time.Hour,
		Now:          now,
		Metrics:      reg,
	})
	// Two packets on link 0's forward dart: backlog = 2 s after.
	q.Send(0, 8192, nil)
	q.Send(0, 8192, nil)
	if b := q.Backlog(0); b != 2*time.Second {
		t.Fatalf("pre-rebind backlog %v; want 2s", b)
	}

	// Rebind: link 0 → link 1, link 1 removed; dart space grows to 6.
	q.RebindDarts(6, []graph.LinkID{1, graph.NoLink})
	if q.NumDarts() != 6 {
		t.Fatalf("NumDarts = %d; want 6", q.NumDarts())
	}
	if b := q.Backlog(2); b != 2*time.Second {
		t.Fatalf("carried backlog on remapped dart %v; want 2s", b)
	}
	if b := q.Backlog(0); b != 0 {
		t.Fatalf("new link 0 inherits stale backlog %v", b)
	}
	if got := reg.Snapshot().Counter(dataplane.MetricTxSent); got != 2 {
		t.Fatalf("retired generation's sends lost: %d", got)
	}
	if b := q.MaxBacklog(); b != 2*time.Second {
		t.Fatalf("MaxBacklog = %v; want 2s", b)
	}
}
