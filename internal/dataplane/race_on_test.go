//go:build race

package dataplane_test

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation distorts the timing assertions of the
// performance-pinning tests.
const raceEnabled = true
