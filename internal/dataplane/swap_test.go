package dataplane_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// swapFixture builds a ring network with a recompiler over it.
func swapFixture(t testing.TB, name string) (*dataplane.Recompiler, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		t.Fatalf("%s ships no embedding", name)
	}
	tbl := route.Build(tp.Graph, route.HopCount)
	p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dataplane.NewRecompiler(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rec, tp.Graph
}

// TestEngineHotSwap pins the swap barrier and the zero-drop guarantee:
// traffic keeps flowing through the engine while ApplyDelta republishes
// recompiled FIBs; nothing is dropped, every batch is decided, and a
// probe submitted after a swap returns always decides on the new FIB
// (run with -race to exercise the publication ordering).
func TestEngineHotSwap(t *testing.T) {
	rec, g := swapFixture(t, "ring:16")
	fib := rec.FIB()
	n := g.NumNodes()

	var submitted, decided atomic.Uint64
	free := make(chan *dataplane.Batch, 64)
	probeDone := make(chan rotation.DartID, 1)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 2,
		OnDone: func(b *dataplane.Batch) {
			decided.Add(uint64(len(b.Pkts)))
			if len(b.Pkts) == 1 {
				probeDone <- b.Pkts[0].Egress
				return
			}
			free <- b
		},
	})
	for i := 0; i < 8; i++ {
		pkts := make([]dataplane.Packet, 64)
		for j := range pkts {
			pkts[j] = dataplane.Packet{Node: graph.NodeID(j % n), Dst: graph.NodeID((j + 3) % n), Ingress: rotation.NoDart}
		}
		free <- &dataplane.Batch{Pkts: pkts}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case b := <-free:
				for !eng.Submit(b) {
				}
				submitted.Add(uint64(len(b.Pkts)))
			}
		}
	}()

	// The probed decision: node 0 toward node 1. With the direct link
	// at weight 10 the shortest path flips to the long way around; at 1
	// it flips back.
	l := g.FindLink(0, 1)
	if l == graph.NoLink {
		t.Fatal("ring link 0-1 missing")
	}
	weights := []float64{10, 1}
	for swapN := 0; swapN < 40; swapN++ {
		d, err := rec.Apply(graph.SetWeight(l, weights[swapN%2]))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		want := d.FIB.Decide(0, 1, rotation.NoDart, core.Header{}, eng.Snapshot())
		probe := &dataplane.Batch{Pkts: []dataplane.Packet{{Node: 0, Dst: 1, Ingress: rotation.NoDart}}}
		for !eng.Submit(probe) {
		}
		submitted.Add(1)
		got := <-probeDone
		if got != want.Egress {
			t.Fatalf("swap %d: probe decided egress %d on a stale FIB; want %d", swapN, got, want.Egress)
		}
	}
	close(stop)
	wg.Wait()
	total := eng.Close()
	if total != submitted.Load() {
		t.Fatalf("decided %d of %d submitted — packets dropped across swaps", total, submitted.Load())
	}
	if decided.Load() != submitted.Load() {
		t.Fatalf("OnDone saw %d of %d submitted", decided.Load(), submitted.Load())
	}
	if eng.FIB() != rec.FIB() {
		t.Fatal("engine not on the latest FIB")
	}
}

// TestEngineSwapCarriesLinkState checks detected failures survive a swap,
// including across a structural renumbering.
func TestEngineSwapCarriesLinkState(t *testing.T) {
	rec, g := swapFixture(t, "ring:8")
	eng := dataplane.NewEngine(rec.FIB(), dataplane.EngineConfig{Shards: 1})
	defer eng.Close()
	eng.SetLink(5, true)
	eng.SetLink(2, true)

	// Weight-only swap: same link space, bits carried verbatim.
	d, err := rec.Apply(graph.SetWeight(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !eng.Snapshot().Down(5) || !eng.Snapshot().Down(2) || eng.Snapshot().Down(1) {
		t.Fatal("weight swap lost link state")
	}

	// Structural swap: remove link 3 (non-bridge on a ring? removing any
	// ring link keeps it connected); IDs above shift down.
	d, err = rec.Apply(graph.AddLinkEdit(0, 4, 2), graph.RemoveLinkEdit(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	st := eng.Snapshot()
	if st.NumLinks() != g.NumLinks() { // -1 removed, +1 added
		t.Fatalf("swapped state sized %d; want %d", st.NumLinks(), g.NumLinks())
	}
	if !st.Down(d.LinkMap[5]) || !st.Down(d.LinkMap[2]) {
		t.Fatal("structural swap lost remapped link state")
	}
	if st.CountDown() != 2 {
		t.Fatalf("structural swap invented failures: %d down", st.CountDown())
	}
}

// TestEngineSwapRefusals covers the guarded error paths.
func TestEngineSwapRefusals(t *testing.T) {
	rec, _ := swapFixture(t, "ring:8")
	fib := rec.FIB()
	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: 1e12})
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{Shards: 1, Egress: tx})
	defer eng.Close()

	if err := eng.SwapFIB(nil, nil); err == nil {
		t.Fatal("nil FIB accepted")
	}
	d, err := rec.Apply(graph.RemoveLinkEdit(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err == nil {
		t.Fatal("structural swap accepted with an egress attached")
	}
	if err := eng.SwapFIB(d.FIB, nil); err == nil {
		t.Fatal("shrunk link space accepted without a map")
	}
	if err := eng.SwapFIB(d.FIB, make([]graph.LinkID, 3)); err == nil {
		t.Fatal("short link map accepted")
	}
	// A same-count structural delta (add + remove) renumbers darts too:
	// the egress queues' per-dart state would throttle the wrong links.
	d2, err := rec.Apply(graph.AddLinkEdit(0, 3, 2), graph.RemoveLinkEdit(1))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Structural {
		t.Fatal("add+remove delta not flagged structural")
	}
	if err := eng.ApplyDelta(d2); err == nil {
		t.Fatal("same-count structural swap accepted with an egress attached")
	}
}
