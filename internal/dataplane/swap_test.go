package dataplane_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// swapFixture builds a ring network with a recompiler over it.
func swapFixture(t testing.TB, name string) (*dataplane.Recompiler, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		t.Fatalf("%s ships no embedding", name)
	}
	tbl := route.Build(tp.Graph, route.HopCount)
	p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dataplane.NewRecompiler(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rec, tp.Graph
}

// TestEngineHotSwap pins the swap barrier and the zero-drop guarantee:
// traffic keeps flowing through the engine while ApplyDelta republishes
// recompiled FIBs; nothing is dropped, every batch is decided, and a
// probe submitted after a swap returns always decides on the new FIB
// (run with -race to exercise the publication ordering).
func TestEngineHotSwap(t *testing.T) {
	rec, g := swapFixture(t, "ring:16")
	fib := rec.FIB()
	n := g.NumNodes()

	var submitted, decided atomic.Uint64
	free := make(chan *dataplane.Batch, 64)
	probeDone := make(chan rotation.DartID, 1)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 2,
		OnDone: func(b *dataplane.Batch) {
			decided.Add(uint64(len(b.Pkts)))
			if len(b.Pkts) == 1 {
				probeDone <- b.Pkts[0].Egress
				return
			}
			free <- b
		},
	})
	for i := 0; i < 8; i++ {
		pkts := make([]dataplane.Packet, 64)
		for j := range pkts {
			pkts[j] = dataplane.Packet{Node: graph.NodeID(j % n), Dst: graph.NodeID((j + 3) % n), Ingress: rotation.NoDart}
		}
		free <- &dataplane.Batch{Pkts: pkts}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case b := <-free:
				for !eng.Submit(b) {
				}
				submitted.Add(uint64(len(b.Pkts)))
			}
		}
	}()

	// The probed decision: node 0 toward node 1. With the direct link
	// at weight 10 the shortest path flips to the long way around; at 1
	// it flips back.
	l := g.FindLink(0, 1)
	if l == graph.NoLink {
		t.Fatal("ring link 0-1 missing")
	}
	weights := []float64{10, 1}
	for swapN := 0; swapN < 40; swapN++ {
		d, err := rec.Apply(graph.SetWeight(l, weights[swapN%2]))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		want := d.FIB.Decide(0, 1, rotation.NoDart, core.Header{}, eng.Snapshot())
		probe := &dataplane.Batch{Pkts: []dataplane.Packet{{Node: 0, Dst: 1, Ingress: rotation.NoDart}}}
		for !eng.Submit(probe) {
		}
		submitted.Add(1)
		got := <-probeDone
		if got != want.Egress {
			t.Fatalf("swap %d: probe decided egress %d on a stale FIB; want %d", swapN, got, want.Egress)
		}
	}
	close(stop)
	wg.Wait()
	total := eng.Close()
	if total != submitted.Load() {
		t.Fatalf("decided %d of %d submitted — packets dropped across swaps", total, submitted.Load())
	}
	if decided.Load() != submitted.Load() {
		t.Fatalf("OnDone saw %d of %d submitted", decided.Load(), submitted.Load())
	}
	if eng.FIB() != rec.FIB() {
		t.Fatal("engine not on the latest FIB")
	}
}

// TestEngineSwapCarriesLinkState checks detected failures survive a swap,
// including across a structural renumbering.
func TestEngineSwapCarriesLinkState(t *testing.T) {
	rec, g := swapFixture(t, "ring:8")
	eng := dataplane.NewEngine(rec.FIB(), dataplane.EngineConfig{Shards: 1})
	defer eng.Close()
	eng.SetLink(5, true)
	eng.SetLink(2, true)

	// Weight-only swap: same link space, bits carried verbatim.
	d, err := rec.Apply(graph.SetWeight(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !eng.Snapshot().Down(5) || !eng.Snapshot().Down(2) || eng.Snapshot().Down(1) {
		t.Fatal("weight swap lost link state")
	}

	// Structural swap: remove link 3 (non-bridge on a ring? removing any
	// ring link keeps it connected); IDs above shift down.
	d, err = rec.Apply(graph.AddLinkEdit(0, 4, 2), graph.RemoveLinkEdit(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	st := eng.Snapshot()
	if st.NumLinks() != g.NumLinks() { // -1 removed, +1 added
		t.Fatalf("swapped state sized %d; want %d", st.NumLinks(), g.NumLinks())
	}
	if !st.Down(d.LinkMap[5]) || !st.Down(d.LinkMap[2]) {
		t.Fatal("structural swap lost remapped link state")
	}
	if st.CountDown() != 2 {
		t.Fatalf("structural swap invented failures: %d down", st.CountDown())
	}
}

// rigidEgress is an Egress without RebindDarts: structural swaps must
// still be refused for it.
type rigidEgress struct{}

func (rigidEgress) Transmit(*dataplane.Batch, *dataplane.LinkState) {}

// TestEngineSwapRefusals covers the guarded error paths. A TxQueue
// egress rebinds across structural swaps (TestStructuralSwapRebindsEgress),
// so the egress refusal now applies only to egresses that cannot.
func TestEngineSwapRefusals(t *testing.T) {
	rec, _ := swapFixture(t, "ring:8")
	fib := rec.FIB()
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{Shards: 1, Egress: rigidEgress{}})
	defer eng.Close()

	if err := eng.SwapFIB(nil, nil); err == nil {
		t.Fatal("nil FIB accepted")
	}
	d, err := rec.Apply(graph.RemoveLinkEdit(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err == nil {
		t.Fatal("structural swap accepted with a non-rebindable egress attached")
	}
	if err := eng.SwapFIB(d.FIB, nil); err == nil {
		t.Fatal("shrunk link space accepted without a map")
	}
	if err := eng.SwapFIB(d.FIB, make([]graph.LinkID, 3)); err == nil {
		t.Fatal("short link map accepted")
	}
	// A same-count structural delta (add + remove) renumbers darts too:
	// the egress queues' per-dart state would throttle the wrong links.
	d2, err := rec.Apply(graph.AddLinkEdit(0, 3, 2), graph.RemoveLinkEdit(1))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Structural {
		t.Fatal("add+remove delta not flagged structural")
	}
	if err := eng.ApplyDelta(d2); err == nil {
		t.Fatal("same-count structural swap accepted with a non-rebindable egress attached")
	}
}

// TestStructuralSwapRebindsEgress is the regression test for the dart-
// sizing bug: before TxQueue implemented DartRebinder, a structural
// ApplyDelta with an egress attached was refused outright, and a Send
// onto a dart added by the new FIB would have panicked on the
// construction-sized dart slice. Now the add-link delta swaps cleanly
// into a live engine, traffic decided on the new FIB transmits onto the
// new link's darts, and the pre-swap counters survive in Stats.
func TestStructuralSwapRebindsEgress(t *testing.T) {
	rec, g := swapFixture(t, "ring:8")
	fib := rec.FIB()
	reg := telemetry.NewRegistry()
	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: 1e12, Metrics: reg})
	done := make(chan struct{}, 8)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: 1,
		Egress: tx,
		OnDone: func(*dataplane.Batch) { done <- struct{}{} },
	})
	defer eng.Close()

	oldDarts := tx.NumDarts()
	submit := func() {
		b := &dataplane.Batch{Pkts: make([]dataplane.Packet, 0, g.NumNodes())}
		for n := 0; n < g.NumNodes(); n++ {
			b.Pkts = append(b.Pkts, dataplane.Packet{
				Node: graph.NodeID(n), Dst: graph.NodeID((n + 3) % g.NumNodes()),
				Ingress: rotation.NoDart,
			})
		}
		for !eng.Submit(b) {
		}
		<-done // decided and transmitted before we move on
	}
	submit()

	// Structural edit against the live engine: a chord 0–4 appears.
	d, err := rec.Apply(graph.AddLinkEdit(0, 4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatalf("structural swap with a TxQueue egress refused: %v", err)
	}
	if got, want := tx.NumDarts(), 2*d.FIB.NumLinks(); got != want {
		t.Fatalf("egress rebound to %d darts; want %d", got, want)
	}
	if tx.NumDarts() <= oldDarts {
		t.Fatalf("dart space did not grow: %d → %d", oldDarts, tx.NumDarts())
	}
	before := reg.Snapshot().Counter(dataplane.MetricTxSent)

	// Send directly onto the new link's darts — the pre-fix code would
	// have panicked indexing the construction-sized slice.
	newLink := graph.LinkID(d.Graph.NumLinks() - 1)
	ab, ba := rotation.DartsOf(newLink)
	st := eng.Snapshot()
	if v := tx.Send(ab, 8192, st); v != dataplane.TxSent {
		t.Fatalf("send onto new dart %d: %v", ab, v)
	}
	if v := tx.Send(ba, 8192, st); v != dataplane.TxSent {
		t.Fatalf("send onto new dart %d: %v", ba, v)
	}
	// And drive whole batches through the swapped engine.
	submit()
	eng.Close()

	after := reg.Snapshot().Counter(dataplane.MetricTxSent)
	if after <= before {
		t.Fatal("no packets transmitted after the structural swap")
	}
	if before == 0 {
		t.Fatal("pre-swap transmits lost from the tx counters after the rebind")
	}

	// A dart beyond every generation is a counted drop, never a panic.
	if v := tx.Send(rotation.DartID(10_000), 8192, nil); v != dataplane.TxDropStaleDart {
		t.Fatalf("out-of-range dart: %v; want drop-stale-dart", v)
	}
	if got := reg.Snapshot().Counter(dataplane.MetricTxDropStaleDart); got != 1 {
		t.Fatalf("stale-dart drop not counted: %d", got)
	}
}
