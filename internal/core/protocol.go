// Package core implements Packet Re-cycling (PR) itself: the cycle-following
// tables derived from a cellular embedding, the PR/DD packet header bits,
// and the per-hop forwarding rule with both termination variants the paper
// describes — the single-failure protocol of §4.2 and the
// decreasing-distance protocol of §4.3 that survives arbitrary
// connectivity-preserving failure combinations.
package core

import (
	"fmt"

	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
)

// Variant selects the termination rule.
type Variant int

const (
	// Basic is the §4.2 protocol: one PR bit; encountering a failure while
	// cycle following clears the bit and resumes shortest-path routing.
	// Guaranteed for any single link failure on 2-edge-connected networks;
	// may loop under some multi-failure combinations (Figure 1(c)).
	Basic Variant = iota
	// Full is the §4.3 protocol: PR bit plus DD bits. A router that hits a
	// failure while cycle following resumes shortest-path routing only if
	// its own distance discriminator is strictly smaller than the header's;
	// otherwise it continues on the complementary cycle of the failed
	// interface. Guaranteed for any failure combination that keeps source
	// and destination connected.
	Full
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Basic:
		return "basic"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Header is PR's per-packet state: one PR bit and, in the Full variant, the
// DD bits stamped by the first failure-detecting router. DD is a float so
// that weight-sum discriminators work; with the paper's hop-count
// discriminator it is integral and needs ⌈log2 d⌉ bits on the wire (see
// package header for the DSCP encoding).
type Header struct {
	PR bool
	DD float64
}

// Protocol binds a topology, its cellular embedding and its routing tables
// into a forwarding engine. It is immutable and safe for concurrent walks.
type Protocol struct {
	g    *graph.Graph
	sys  *rotation.System
	tbl  *route.Table
	vrnt Variant
	// quant, when non-nil, replaces raw discriminators with their
	// order-preserving ranks: Header.DD carries a b-bit code instead of an
	// unbounded hop/weight sum. Decisions are bit-identical to the raw
	// protocol (see Quantiser); only the header contents differ.
	quant *Quantiser
	// maxSteps caps walk length as a backstop; exact state-repetition
	// detection usually fires first.
	maxSteps int
}

// Config adjusts protocol construction.
type Config struct {
	// Variant selects Basic (§4.2) or Full (§4.3). Default Full.
	Variant Variant
	// Quantise stamps and compares rank-quantised discriminators (see
	// Quantiser) instead of raw ones, bounding Header.DD to the bit budget
	// a wire codec can carry. Default off: Header.DD holds raw values.
	Quantise bool
	// MaxSteps overrides the walk safety cap (default 4·V·E + 16).
	MaxSteps int
}

// New builds a Protocol. The rotation system and routing table must be
// built over the same graph g.
func New(g *graph.Graph, sys *rotation.System, tbl *route.Table, cfg Config) (*Protocol, error) {
	if sys.Graph() != g {
		return nil, fmt.Errorf("core: rotation system built over a different graph")
	}
	if tbl.Graph() != g {
		return nil, fmt.Errorf("core: routing table built over a different graph")
	}
	max := cfg.MaxSteps
	if max <= 0 {
		max = 4*g.NumNodes()*g.NumLinks() + 16
	}
	p := &Protocol{g: g, sys: sys, tbl: tbl, vrnt: cfg.Variant, maxSteps: max}
	if cfg.Quantise {
		p.quant = BuildQuantiser(tbl)
	}
	return p, nil
}

// NewWithQuantiser is New with a prebuilt quantiser — the
// delta-recompilation hook: an incremental recompiler that already
// rebuilt only the dirty rank columns (Quantiser.Rebuild) injects the
// result here instead of paying BuildQuantiser's full O(n² log n) pass.
// quant must be built over tbl; nil quant with cfg.Quantise set falls
// back to a full build.
func NewWithQuantiser(g *graph.Graph, sys *rotation.System, tbl *route.Table, cfg Config, quant *Quantiser) (*Protocol, error) {
	if quant != nil && quant.n != g.NumNodes() {
		return nil, fmt.Errorf("core: quantiser sized for %d nodes; graph has %d", quant.n, g.NumNodes())
	}
	if !cfg.Quantise {
		return New(g, sys, tbl, cfg)
	}
	cfg.Quantise = quant == nil
	p, err := New(g, sys, tbl, cfg)
	if err != nil {
		return nil, err
	}
	if quant != nil {
		p.quant = quant
	}
	return p, nil
}

// Graph returns the protocol's topology.
func (p *Protocol) Graph() *graph.Graph { return p.g }

// System returns the protocol's rotation system.
func (p *Protocol) System() *rotation.System { return p.sys }

// Routes returns the protocol's routing tables.
func (p *Protocol) Routes() *route.Table { return p.tbl }

// Variant returns the protocol's termination variant.
func (p *Protocol) Variant() Variant { return p.vrnt }

// Quantiser returns the rank quantiser when the protocol was built with
// Config.Quantise, nil otherwise.
func (p *Protocol) Quantiser() *Quantiser { return p.quant }

// Event classifies what happened at a node while forwarding one packet.
type Event int

const (
	// EventRoute: normal shortest-path forwarding.
	EventRoute Event = iota
	// EventDetect: shortest-path egress failed; PR bit set (and DD stamped
	// in the Full variant); packet sent on the complementary cycle.
	EventDetect
	// EventCycle: cycle following via the cycle-following table.
	EventCycle
	// EventContinue: cycle-following egress failed and the termination test
	// said keep cycling (Full: own DD ≥ header DD); packet sent on the
	// complementary cycle of the newly failed interface.
	EventContinue
	// EventResume: cycle-following egress failed and the termination test
	// said stop (Basic: always; Full: own DD < header DD); PR bit cleared,
	// shortest-path routing resumed at this node.
	EventResume
	// EventDeliver: the packet reached its destination.
	EventDeliver
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventRoute:
		return "route"
	case EventDetect:
		return "detect"
	case EventCycle:
		return "cycle"
	case EventContinue:
		return "continue"
	case EventResume:
		return "resume"
	case EventDeliver:
		return "deliver"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Outcome is the terminal fate of a walk.
type Outcome int

const (
	// Delivered: packet reached the destination.
	Delivered Outcome = iota
	// Looped: the exact forwarding state repeated (or the step cap was
	// hit) — a forwarding loop. The Full variant must never produce this
	// when source and destination remain connected.
	Looped
	// Isolated: a router found every incident link failed.
	Isolated
	// NoRoute: the failure-free routing table has no path (disconnected
	// topology); PR never engages.
	NoRoute
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case Isolated:
		return "isolated"
	case NoRoute:
		return "no-route"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Step records one node's handling of the packet.
type Step struct {
	// Node processing the packet.
	Node graph.NodeID
	// Ingress is the dart the packet arrived on (NoDart at the origin).
	Ingress rotation.DartID
	// Egress is the dart the packet left on (NoDart on the final step).
	Egress rotation.DartID
	// Event classifies the decision taken here.
	Event Event
	// Header is the packet header *after* this node's processing.
	Header Header
}

// Result is a completed walk.
type Result struct {
	Outcome Outcome
	// Steps is the full per-node transcript.
	Steps []Step
	// Cost is the weight sum of traversed links.
	Cost float64
	// Stretch is Cost divided by the failure-free shortest-path cost
	// (≥ 1 for delivered packets; 0 when not delivered or src == dst).
	Stretch float64
}

// Delivered reports whether the packet arrived.
func (r Result) Delivered() bool { return r.Outcome == Delivered }

// Path returns the node sequence visited, including source and (when
// delivered) destination.
func (r Result) Path() []graph.NodeID {
	out := make([]graph.NodeID, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Node
	}
	return out
}

// Hops returns the number of links traversed.
func (r Result) Hops() int {
	if len(r.Steps) == 0 {
		return 0
	}
	return len(r.Steps) - 1
}
