package core

import (
	"math"
	"sort"

	"recycle/internal/graph"
	"recycle/internal/par"
	"recycle/internal/route"
)

// RankUnreachable is the Quantiser's sentinel for pairs with no route.
const RankUnreachable = ^uint32(0)

// Quantiser is the bucketisation pass that makes arbitrary distance
// discriminators wire-encodable: it maps each raw discriminator
// DD(node, dst) — a hop count or an unbounded weight sum — onto its *rank*
// among the distinct discriminator values that occur toward dst, a dense
// integer code needing ⌈log2 r⌉ bits for r distinct values (≤ the node
// count, so ≤ 16 bits on the dataplane's 65536-node address plan).
//
// Why rank coding preserves the §4.3 proof: the protocol only ever compares
// discriminators of two routers *toward the same destination* — the header
// DD stamped by one router against the local DD of another. For a fixed
// destination, rank assignment is a strictly monotone map of the raw
// values, so
//
//	DD(a, dst) < DD(b, dst)  ⟺  Rank(a, dst) < Rank(b, dst)
//
// and every strict-decrease chain of raw discriminators along a recycling
// path maps to a strict-decrease chain of ranks. The quantised protocol
// therefore takes *bit-identical decisions* to the raw protocol — not
// merely equivalent delivery — which the differential harness in
// invariant_test.go exercises over hundreds of random topologies.
//
// A Quantiser is immutable after Build and safe for concurrent use.
type Quantiser struct {
	n       int
	rank    []uint32 // rank[node*n+dst]; RankUnreachable when no route
	maxRank uint32
	// dstMax[dst] is the largest rank in dst's column, so a delta rebuild
	// (Rebuild) can recompute the global max from per-column maxima.
	dstMax []uint32
}

// BuildQuantiser computes the per-destination rank tables of a routing
// table. Cost is O(n² log n) — offline work for the paper's designated
// server, never paid at failure time. Rank assignment is independent per
// destination (each column writes a disjoint stride of rank plus its own
// dstMax slot), so columns fan out across GOMAXPROCS workers with
// per-worker sort scratch; the output is bit-identical to a sequential
// build at any worker count.
func BuildQuantiser(tbl *route.Table) *Quantiser {
	return BuildQuantiserWorkers(tbl, 0)
}

// BuildQuantiserWorkers is BuildQuantiser with an explicit worker count:
// 0 picks the automatic fan-out, 1 forces the sequential build.
func BuildQuantiserWorkers(tbl *route.Table, workers int) *Quantiser {
	n := tbl.Graph().NumNodes()
	q := &Quantiser{n: n, rank: make([]uint32, n*n), dstMax: make([]uint32, n)}
	par.For(n, workers, func(_, lo, hi int) {
		vals := make([]float64, 0, n)
		for dst := lo; dst < hi; dst++ {
			vals = q.rankColumn(tbl, graph.NodeID(dst), vals)
		}
	})
	q.refreshMax()
	return q
}

// rankColumn recomputes destination dst's rank column and per-column max
// from tbl, reusing vals as scratch. It is the per-destination unit both
// BuildQuantiser and the delta path's Rebuild share.
func (q *Quantiser) rankColumn(tbl *route.Table, dst graph.NodeID, vals []float64) []float64 {
	n := q.n
	if tbl.DiscriminatorKind() == route.HopCount {
		// Hop counts toward a destination are dense: every node's parent
		// is exactly one hop closer, so each value 0..max occurs and the
		// rank of hop count h among the distinct values is h itself. This
		// skips the sort the general (weight-sum) column needs.
		tree := tbl.Tree(dst)
		max := uint32(0)
		for node := 0; node < n; node++ {
			idx := node*n + int(dst)
			h := tree.Hops[node]
			if h < 0 {
				q.rank[idx] = RankUnreachable
				continue
			}
			q.rank[idx] = uint32(h)
			if uint32(h) > max {
				max = uint32(h)
			}
		}
		q.dstMax[dst] = max
		return vals
	}
	vals = vals[:0]
	for node := 0; node < n; node++ {
		if tbl.Reachable(graph.NodeID(node), dst) {
			vals = append(vals, tbl.DD(graph.NodeID(node), dst))
		}
	}
	sort.Float64s(vals)
	// Dedupe in place: ranks must be equal for equal raw values, or the
	// ≥ branch of the termination test would diverge from the raw rule.
	distinct := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			distinct = append(distinct, v)
		}
	}
	q.dstMax[dst] = 0
	for node := 0; node < n; node++ {
		idx := node*n + int(dst)
		if !tbl.Reachable(graph.NodeID(node), dst) {
			q.rank[idx] = RankUnreachable
			continue
		}
		dd := tbl.DD(graph.NodeID(node), dst)
		r := uint32(sort.SearchFloat64s(distinct, dd))
		q.rank[idx] = r
		if r > q.dstMax[dst] {
			q.dstMax[dst] = r
		}
	}
	return vals
}

// refreshMax recomputes the global max rank from the per-column maxima.
func (q *Quantiser) refreshMax() {
	q.maxRank = 0
	for _, m := range q.dstMax {
		if m > q.maxRank {
			q.maxRank = m
		}
	}
}

// Rebuild returns a quantiser for tbl that recomputes only the given
// destinations' rank columns and shares every other column with q — the
// delta-recompilation hook. Rank assignment is independent per
// destination (the §4.3 termination test only ever compares
// discriminators toward one destination), so columns whose DD values a
// topology edit did not touch stay exact. q itself is not modified.
func (q *Quantiser) Rebuild(tbl *route.Table, dirty []graph.NodeID) *Quantiser {
	if len(dirty) == 0 {
		return q
	}
	nq := &Quantiser{
		n:      q.n,
		rank:   append([]uint32(nil), q.rank...),
		dstMax: append([]uint32(nil), q.dstMax...),
	}
	// Dirty columns are disjoint strides, so re-rank them in parallel
	// like BuildQuantiser does (small dirty sets stay sequential under
	// the fan-out floor).
	par.For(len(dirty), 0, func(_, lo, hi int) {
		vals := make([]float64, 0, q.n)
		for i := lo; i < hi; i++ {
			vals = nq.rankColumn(tbl, dirty[i], vals)
		}
	})
	nq.refreshMax()
	return nq
}

// Rank returns the quantised discriminator of node toward dst, or
// RankUnreachable when no route exists.
func (q *Quantiser) Rank(node, dst graph.NodeID) uint32 {
	return q.rank[int(node)*q.n+int(dst)]
}

// MaxRank returns the largest rank assigned to any reachable pair.
func (q *Quantiser) MaxRank() uint32 { return q.maxRank }

// Bits returns the number of bits needed to carry any rank: the smallest b
// with 2^b > MaxRank (minimum 1). For hop-count discriminators ranks equal
// hop counts, so this matches route.Table.DDBits; for weight sums it is the
// paper's "order of log2(d) bits" where the raw bit count would grow with
// the weight magnitudes instead.
func (q *Quantiser) Bits() int {
	bits := 1
	for uint64(1)<<bits <= uint64(q.maxRank) {
		bits++
	}
	return bits
}

// VerifyOrderPreserved checks the quantisation invariant the §4.3 proof
// needs — for every destination and every pair of reachable nodes, rank
// comparison agrees with raw discriminator comparison — and returns false
// on the first violation. It exists for the property harness and as a
// Compile-time self-check; a correct Build can never fail it.
func (q *Quantiser) VerifyOrderPreserved(tbl *route.Table) bool {
	n := q.n
	for dst := 0; dst < n; dst++ {
		for a := 0; a < n; a++ {
			ra := q.rank[a*n+dst]
			if ra == RankUnreachable {
				continue
			}
			dda := tbl.DD(graph.NodeID(a), graph.NodeID(dst))
			for b := a + 1; b < n; b++ {
				rb := q.rank[b*n+dst]
				if rb == RankUnreachable {
					continue
				}
				ddb := tbl.DD(graph.NodeID(b), graph.NodeID(dst))
				if (dda < ddb) != (ra < rb) || (dda == ddb) != (ra == rb) {
					return false
				}
			}
		}
	}
	return true
}

// quantDD returns the rank as the float the Header carries. Ranks are ≤
// 2^32−1 and float64 represents every integer below 2^53 exactly, so rank
// comparisons through Header.DD stay exact.
func quantDD(r uint32) float64 {
	if r == RankUnreachable {
		return math.Inf(1)
	}
	return float64(r)
}
