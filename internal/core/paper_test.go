package core

import (
	"strings"
	"testing"

	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// paperProtocol builds the protocol over the paper's Figure 1 network with
// its published embedding and hop-count discriminators.
func paperProtocol(t *testing.T, v Variant) *Protocol {
	t.Helper()
	tp := topo.PaperExample()
	tbl := route.Build(tp.Graph, route.HopCount)
	p, err := New(tp.Graph, tp.Embedding, tbl, Config{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nodesOf(t *testing.T, g *graph.Graph, names ...string) []graph.NodeID {
	t.Helper()
	out := make([]graph.NodeID, len(names))
	for i, n := range names {
		out[i] = g.NodeByName(n)
		if out[i] == graph.NoNode {
			t.Fatalf("no node %q", n)
		}
	}
	return out
}

func failLinks(t *testing.T, g *graph.Graph, pairs ...[2]string) *graph.FailureSet {
	t.Helper()
	fs := graph.NewFailureSet()
	for _, pr := range pairs {
		l := g.FindLink(g.NodeByName(pr[0]), g.NodeByName(pr[1]))
		if l == graph.NoLink {
			t.Fatalf("no link %s-%s", pr[0], pr[1])
		}
		fs.Add(l)
	}
	return fs
}

func pathNames(g *graph.Graph, r Result) string {
	names := make([]string, 0, len(r.Steps))
	for _, s := range r.Steps {
		names = append(names, g.Name(s.Node))
	}
	return strings.Join(names, "→")
}

// TestTable1Reproduction pins the paper's Table 1: the cycle-following
// table at node D, including the cycle labels.
func TestTable1Reproduction(t *testing.T) {
	p := paperProtocol(t, Full)
	g := p.Graph()
	d := g.NodeByName("D")

	// Expected, from the paper:
	//   I_BD → I_DF (c4) | I_DE (c1)
	//   I_ED → I_DB (c2) | I_DF (c4)
	//   I_FD → I_DE (c1) | I_DB (c2)
	want := map[string][2]string{
		"B": {"F", "E"},
		"E": {"B", "F"},
		"F": {"E", "B"},
	}
	rows := p.CycleTable(d)
	if len(rows) != 3 {
		t.Fatalf("rows = %d; want 3", len(rows))
	}
	for _, r := range rows {
		from := g.Name(p.System().Dart(r.Ingress).Tail)
		follow := g.Name(p.System().Dart(r.Following).Head)
		comp := g.Name(p.System().Dart(r.Complementary).Head)
		w, ok := want[from]
		if !ok {
			t.Fatalf("unexpected ingress from %s", from)
		}
		if follow != w[0] || comp != w[1] {
			t.Errorf("ingress I%sD: got (I D%s, I D%s); want (I D%s, I D%s)", from, follow, comp, w[0], w[1])
		}
	}

	// The rendered table must carry the paper's cycle structure: the
	// rendering includes interface names and cycle labels.
	text := p.FormatCycleTable(d)
	for _, frag := range []string{"IBD", "IED", "IFD", "IDF", "IDB", "IDE"} {
		if !strings.Contains(text, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, text)
		}
	}
}

// TestFigure1bWalk: single failure D-E, packet A→F. The paper's narrative:
// A→B→D (shortest path), D detects, cycle c2 via B and C, E clears the PR
// bit and delivers via F. Expected node sequence: A B D B C E F.
func TestFigure1bWalk(t *testing.T) {
	for _, v := range []Variant{Basic, Full} {
		p := paperProtocol(t, v)
		g := p.Graph()
		ids := nodesOf(t, g, "A", "F")
		fails := failLinks(t, g, [2]string{"D", "E"})

		r := p.Walk(ids[0], ids[1], fails)
		if !r.Delivered() {
			t.Fatalf("%v: outcome = %v; want delivered", v, r.Outcome)
		}
		if got, want := pathNames(g, r), "A→B→D→B→C→E→F"; got != want {
			t.Fatalf("%v: path = %s; want %s", v, got, want)
		}
		// Event sequence: route, route, detect, cycle, cycle, resume, deliver.
		wantEvents := []Event{EventRoute, EventRoute, EventDetect, EventCycle, EventCycle, EventResume, EventDeliver}
		for i, s := range r.Steps {
			if s.Event != wantEvents[i] {
				t.Fatalf("%v: step %d event = %v; want %v", v, i, s.Event, wantEvents[i])
			}
		}
		// Full variant: D stamps DD = 2 (its hop count to F).
		if v == Full {
			if dd := r.Steps[2].Header.DD; dd != 2 {
				t.Fatalf("DD stamped at D = %v; want 2", dd)
			}
		}
		// The PR bit is set from D through C and cleared at E.
		if !r.Steps[3].Header.PR || !r.Steps[4].Header.PR {
			t.Fatal("PR bit should be set while cycling via B and C")
		}
		if r.Steps[5].Header.PR {
			t.Fatal("PR bit should be cleared at E")
		}
	}
}

// TestFigure1cWalkFull: failures {D-E, B-C}, packet A→F, Full variant.
// Paper narrative (§4.3): D stamps DD=2 and sends the packet on c2; B
// (DD 3 ≥ 2) continues on c3 via A; C (DD 2 ≥ 2) continues on c2 to E;
// E (DD 1 < 2) terminates and delivers. Node sequence: A B D B A C E F.
func TestFigure1cWalkFull(t *testing.T) {
	p := paperProtocol(t, Full)
	g := p.Graph()
	ids := nodesOf(t, g, "A", "F")
	fails := failLinks(t, g, [2]string{"D", "E"}, [2]string{"B", "C"})

	r := p.Walk(ids[0], ids[1], fails)
	if !r.Delivered() {
		t.Fatalf("outcome = %v; want delivered", r.Outcome)
	}
	if got, want := pathNames(g, r), "A→B→D→B→A→C→E→F"; got != want {
		t.Fatalf("path = %s; want %s", got, want)
	}
	wantEvents := []Event{EventRoute, EventRoute, EventDetect, EventContinue, EventCycle, EventContinue, EventResume, EventDeliver}
	for i, s := range r.Steps {
		if s.Event != wantEvents[i] {
			t.Fatalf("step %d (%s) event = %v; want %v", i, g.Name(s.Node), s.Event, wantEvents[i])
		}
	}
	// DD stays 2 for the whole episode.
	for i := 2; i <= 5; i++ {
		if r.Steps[i].Header.DD != 2 || !r.Steps[i].Header.PR {
			t.Fatalf("step %d header = %+v; want PR set, DD 2", i, r.Steps[i].Header)
		}
	}
}

// TestFigure1cBasicLoops: the same scenario under the §4.2 protocol loops
// (the paper's motivation for the DD mechanism) and the walk engine detects
// it rather than spinning.
func TestFigure1cBasicLoops(t *testing.T) {
	p := paperProtocol(t, Basic)
	g := p.Graph()
	ids := nodesOf(t, g, "A", "F")
	fails := failLinks(t, g, [2]string{"D", "E"}, [2]string{"B", "C"})

	r := p.Walk(ids[0], ids[1], fails)
	if r.Outcome != Looped {
		t.Fatalf("outcome = %v; want looped (Figure 1(c) under the basic protocol)", r.Outcome)
	}
}

// TestSection42DoubleFailure: failures {A-B, D-E}, packet A→F. §4.2 claims
// even the basic scheme recovers: c3 brings the packet to B, routing
// resumes, fails again at D, and recovery proceeds as in Figure 1(b).
// Expected node sequence: A C B D B C E F.
func TestSection42DoubleFailure(t *testing.T) {
	for _, v := range []Variant{Basic, Full} {
		p := paperProtocol(t, v)
		g := p.Graph()
		ids := nodesOf(t, g, "A", "F")
		fails := failLinks(t, g, [2]string{"A", "B"}, [2]string{"D", "E"})

		r := p.Walk(ids[0], ids[1], fails)
		if !r.Delivered() {
			t.Fatalf("%v: outcome = %v; want delivered", v, r.Outcome)
		}
		if got, want := pathNames(g, r), "A→C→B→D→B→C→E→F"; got != want {
			t.Fatalf("%v: path = %s; want %s", v, got, want)
		}
	}
}

// TestFigure1bStretch: the Fig 1(b) walk costs 1+1+1+2+2+1 = 8 versus the
// failure-free shortest path cost 4, stretch 2.
func TestFigure1bStretch(t *testing.T) {
	p := paperProtocol(t, Full)
	g := p.Graph()
	ids := nodesOf(t, g, "A", "F")
	r := p.Walk(ids[0], ids[1], failLinks(t, g, [2]string{"D", "E"}))
	if r.Cost != 8 {
		t.Fatalf("cost = %v; want 8", r.Cost)
	}
	if r.Stretch != 2 {
		t.Fatalf("stretch = %v; want 2", r.Stretch)
	}
	if r.Hops() != 6 {
		t.Fatalf("hops = %d; want 6", r.Hops())
	}
}

// TestNoFailureIsShortestPath: with no failures PR must not perturb routing.
func TestNoFailureIsShortestPath(t *testing.T) {
	p := paperProtocol(t, Full)
	g := p.Graph()
	tbl := p.Routes()
	for src := 0; src < g.NumNodes(); src++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			r := p.Walk(graph.NodeID(src), graph.NodeID(dst), nil)
			if !r.Delivered() {
				t.Fatalf("%d→%d: not delivered without failures", src, dst)
			}
			if src != dst {
				if r.Cost != tbl.PathCost(graph.NodeID(src), graph.NodeID(dst)) {
					t.Fatalf("%d→%d: cost %v != SP cost", src, dst, r.Cost)
				}
				if r.Stretch != 1 {
					t.Fatalf("%d→%d: stretch %v; want 1", src, dst, r.Stretch)
				}
				for _, s := range r.Steps {
					if s.Header.PR {
						t.Fatalf("%d→%d: PR bit set without failures", src, dst)
					}
				}
			}
		}
	}
}

// TestMemoryFootprint checks the §6 memory accounting at node D: 3
// interfaces → 6 cycle entries, 5 DD entries.
func TestMemoryFootprint(t *testing.T) {
	p := paperProtocol(t, Full)
	d := p.Graph().NodeByName("D")
	m := p.Memory(d)
	if m.CycleTableEntries != 6 || m.DDEntries != 5 {
		t.Fatalf("memory = %+v; want 6 cycle entries, 5 DD entries", m)
	}
}

func TestNewRejectsMismatchedComponents(t *testing.T) {
	tp := topo.PaperExample()
	other := topo.Abilene(topo.UnitWeights)
	tbl := route.Build(tp.Graph, route.HopCount)
	otherTbl := route.Build(other.Graph, route.HopCount)
	if _, err := New(tp.Graph, tp.Embedding, otherTbl, Config{}); err == nil {
		t.Fatal("accepted routing table over a different graph")
	}
	otherSys := rotation.AdjacencyOrder(other.Graph)
	if _, err := New(tp.Graph, otherSys, tbl, Config{}); err == nil {
		t.Fatal("accepted rotation system over a different graph")
	}
}

func TestVariantAndOutcomeStrings(t *testing.T) {
	if Basic.String() != "basic" || Full.String() != "full" {
		t.Fatal("variant names wrong")
	}
	for _, o := range []Outcome{Delivered, Looped, Isolated, NoRoute} {
		if o.String() == "" {
			t.Fatal("outcome must render")
		}
	}
	for _, e := range []Event{EventRoute, EventDetect, EventCycle, EventContinue, EventResume, EventDeliver} {
		if e.String() == "" {
			t.Fatal("event must render")
		}
	}
	if Variant(9).String() == "" || Outcome(9).String() == "" || Event(9).String() == "" {
		t.Fatal("unknown enums must render")
	}
}
