package core

// The quantisation property harness: the PR 1 FIB sweep's differential
// style, pointed at the rank quantiser. Over hundreds of random
// 2-edge-connected topologies × random failure sets it proves the two
// claims the wire codecs rely on:
//
//  1. Strict decrease survives bucketisation: along every recycled path,
//     successive EventDetect stampings of the quantised protocol carry
//     strictly decreasing DD codes (the §4.3 termination argument).
//  2. Differential oracle: the quantised protocol's walks are
//     *step-identical* to the raw protocol's — same events, same darts,
//     same outcome — so delivery trivially matches, on any embedding.

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
)

// quantCase is one random topology of the harness.
type quantCase struct {
	seed int64
	g    *graph.Graph
	sys  *rotation.System
	disc route.Discriminator
}

// quantCases generates the harness population: ≥200 random
// 2-edge-connected graphs under random rotation systems (the invariant
// must hold on *any* embedding, not just genus-0 ones), alternating
// discriminators so weight sums — where quantisation actually buckets —
// get equal coverage.
func quantCases(count int) []quantCase {
	out := make([]quantCase, 0, count)
	for seed := int64(1); len(out) < count; seed++ {
		var g *graph.Graph
		if seed%3 == 0 {
			g = graph.RandomPlanarLike(7+int(seed%9), seed)
		} else {
			n := 6 + int(seed%10)
			g = graph.RandomTwoConnected(n, n+2+int(seed)%n, seed)
		}
		disc := route.HopCount
		if seed%2 == 0 {
			disc = route.WeightSum
		}
		out = append(out, quantCase{seed: seed, g: g, sys: rotation.Random(g, seed*17), disc: disc})
	}
	return out
}

// quantFailsets samples random failure sets for one graph, always
// including a single failure and the empty set.
func quantFailsets(g *graph.Graph, seed int64) []*graph.FailureSet {
	out := []*graph.FailureSet{graph.NewFailureSet()}
	if singles := graph.SingleFailureScenarios(g); len(singles) > 0 {
		out = append(out, singles[int(seed)%len(singles)])
	}
	for _, k := range []int{2, 3, 4} {
		if fss, err := graph.SampleFailureScenarios(g, k, 2, seed*31+int64(k)); err == nil {
			out = append(out, fss...)
		}
	}
	return out
}

// TestQuantisedInvariant is the harness entry point.
func TestQuantisedInvariant(t *testing.T) {
	cases := quantCases(200)
	graphsChecked, walks, recycled := 0, 0, 0
	for _, tc := range cases {
		tbl := route.Build(tc.g, tc.disc)
		raw, err := New(tc.g, tc.sys, tbl, Config{Variant: Full})
		if err != nil {
			t.Fatal(err)
		}
		quant, err := New(tc.g, tc.sys, tbl, Config{Variant: Full, Quantise: true})
		if err != nil {
			t.Fatal(err)
		}
		q := quant.Quantiser()
		if q == nil {
			t.Fatal("Quantise config produced no quantiser")
		}
		if !q.VerifyOrderPreserved(tbl) {
			t.Fatalf("seed %d disc %v: quantiser order violated", tc.seed, tc.disc)
		}
		maxRank := float64(q.MaxRank())
		for _, fs := range quantFailsets(tc.g, tc.seed) {
			for src := 0; src < tc.g.NumNodes(); src++ {
				for dst := 0; dst < tc.g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					s, d := graph.NodeID(src), graph.NodeID(dst)
					walks++
					rq := quant.Walk(s, d, fs)
					rr := raw.Walk(s, d, fs)

					// Differential oracle: identical structure, so
					// delivery (and stretch, and paths) match exactly.
					if rq.Outcome != rr.Outcome {
						t.Fatalf("seed %d disc %v fails %v: %d→%d quantised outcome %v, raw %v",
							tc.seed, tc.disc, fs, src, dst, rq.Outcome, rr.Outcome)
					}
					if len(rq.Steps) != len(rr.Steps) {
						t.Fatalf("seed %d disc %v fails %v: %d→%d quantised %d steps, raw %d",
							tc.seed, tc.disc, fs, src, dst, len(rq.Steps), len(rr.Steps))
					}
					for i := range rq.Steps {
						sq, sr := rq.Steps[i], rr.Steps[i]
						if sq.Node != sr.Node || sq.Egress != sr.Egress || sq.Event != sr.Event {
							t.Fatalf("seed %d disc %v fails %v: %d→%d step %d diverged: quantised %+v, raw %+v",
								tc.seed, tc.disc, fs, src, dst, i, sq, sr)
						}
					}

					// Strict decrease of the quantised code along the
					// recycled path, and wire encodability of every stamp.
					last := -1.0
					for _, step := range rq.Steps {
						if step.Header.PR && step.Header.DD > maxRank {
							t.Fatalf("seed %d disc %v: stamped code %v exceeds max rank %v",
								tc.seed, tc.disc, step.Header.DD, maxRank)
						}
						if step.Event != EventDetect {
							continue
						}
						recycled++
						if step.Header.DD != float64(uint32(step.Header.DD)) {
							t.Fatalf("seed %d disc %v: non-integral quantised DD %v",
								tc.seed, tc.disc, step.Header.DD)
						}
						if last >= 0 && step.Header.DD >= last {
							t.Fatalf("seed %d disc %v fails %v: %d→%d quantised DD %v did not decrease below %v",
								tc.seed, tc.disc, fs, src, dst, step.Header.DD, last)
						}
						last = step.Header.DD
					}
				}
			}
		}
		graphsChecked++
	}
	if graphsChecked < 200 {
		t.Fatalf("only %d graphs checked; want ≥ 200", graphsChecked)
	}
	if recycled == 0 {
		t.Fatal("no recycling episodes exercised — failure sampling broken")
	}
	t.Logf("%d graphs, %d differential walks, %d recycling stampings", graphsChecked, walks, recycled)
}

// TestQuantisedDeliveryGuarantee re-runs the §5 headline claim with the
// quantised protocol on genus-0 embeddings: bucketised codes must not cost
// a single delivery.
func TestQuantisedDeliveryGuarantee(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 8; seed++ {
		g := planarTwoConnected(10+int(seed%8), seed*13)
		sys := planarSystem(t, g)
		for _, disc := range []route.Discriminator{route.HopCount, route.WeightSum} {
			tbl := route.Build(g, disc)
			p, err := New(g, sys, tbl, Config{Variant: Full, Quantise: true})
			if err != nil {
				t.Fatal(err)
			}
			scenarios, err := graph.SampleFailureScenarios(g, 3, 5, seed*100)
			if err != nil {
				continue
			}
			for _, fs := range scenarios {
				for src := 0; src < g.NumNodes(); src++ {
					for dst := 0; dst < g.NumNodes(); dst++ {
						if src == dst {
							continue
						}
						checked++
						if r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs); !r.Delivered() {
							t.Fatalf("seed %d disc %v fails %v: %d→%d outcome %v",
								seed, disc, fs, src, dst, r.Outcome)
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no walks exercised")
	}
}
