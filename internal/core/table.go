package core

import (
	"fmt"
	"sort"
	"strings"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// CycleRow is one entry of a router's cycle-following table (paper
// Table 1): for packets arriving on Ingress with the PR bit set, forward on
// Following; if Following has failed, the complementary cycle continues on
// Complementary.
type CycleRow struct {
	// Ingress is the arriving dart (tail = upstream neighbour, head = this
	// router).
	Ingress rotation.DartID
	// Following is φ(Ingress): the next dart of the ingress dart's cycle.
	Following rotation.DartID
	// Complementary is σ(Following): the egress used when Following's link
	// is down — the next hop on the complementary cycle.
	Complementary rotation.DartID
}

// CycleTable returns node n's cycle-following table, one row per incident
// link, ordered by the upstream neighbour's node ID (then link ID) so the
// rendering is deterministic.
func (p *Protocol) CycleTable(n graph.NodeID) []CycleRow {
	rows := make([]CycleRow, 0, p.g.Degree(n))
	for _, nb := range p.g.Neighbors(n) {
		in := rotation.ReverseID(p.sys.OutgoingDart(n, nb.Link))
		follow := p.sys.FaceNext(in)
		rows = append(rows, CycleRow{
			Ingress:       in,
			Following:     follow,
			Complementary: p.sys.Complementary(follow),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ingress < rows[j].Ingress })
	return rows
}

// FormatCycleTable renders node n's cycle-following table in the paper's
// Table 1 notation, where I_{YX} is the interface at X receiving packets
// from Y, annotated with the cycle (face) index of each egress.
func (p *Protocol) FormatCycleTable(n graph.NodeID) string {
	faces := p.sys.Faces()
	ifName := func(d rotation.DartID) string {
		dart := p.sys.Dart(d)
		return fmt.Sprintf("I%s%s", p.g.Name(dart.Tail), p.g.Name(dart.Head))
	}
	egName := func(d rotation.DartID) string {
		return fmt.Sprintf("%s (c%d)", ifName(d), faces.FaceIndexOf(d)+1)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cycle following table at node %s\n", p.g.Name(n))
	fmt.Fprintf(&b, "%-10s %-16s %-16s\n", "Incoming", "CycleFollowing", "Complementary")
	for _, r := range p.CycleTable(n) {
		fmt.Fprintf(&b, "%-10s %-16s %-16s\n", ifName(r.Ingress), egName(r.Following), egName(r.Complementary))
	}
	return b.String()
}

// MemoryFootprint estimates the additional per-router state PR requires
// (§6): the cycle-following table (interfaces × 2 egress entries) plus the
// DD column in the routing table (one value per destination). Returned as
// entry counts, deliberately unit-free.
type MemoryFootprint struct {
	// CycleTableEntries counts (following, complementary) pairs: 2 per
	// interface.
	CycleTableEntries int
	// DDEntries counts the extra routing-table column: destinations − 1.
	DDEntries int
}

// Memory returns the PR memory footprint of node n.
func (p *Protocol) Memory(n graph.NodeID) MemoryFootprint {
	return MemoryFootprint{
		CycleTableEntries: 2 * p.g.Degree(n),
		DDEntries:         p.g.NumNodes() - 1,
	}
}
