package core

import (
	"testing"

	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// stretchEps absorbs floating-point accumulation-order differences between
// a walk's cost sum and Dijkstra's distance.
const stretchEps = 1e-9

func buildProtocol(t *testing.T, g *graph.Graph, sys *rotation.System, v Variant, disc route.Discriminator) *Protocol {
	t.Helper()
	p, err := New(g, sys, route.Build(g, disc), Config{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// planarSystem embeds g at genus 0, skipping the test if g is not planar.
// The paper's §5 delivery guarantee relies on embeddings in which every
// link separates two distinct cells — guaranteed by genus-0 embeddings of
// 2-edge-connected graphs (see TestEmbeddingQualityMatters for what happens
// otherwise).
func planarSystem(t *testing.T, g *graph.Graph) *rotation.System {
	t.Helper()
	s, err := (embedding.Planar{}).Embed(g)
	if err != nil {
		t.Skipf("graph not planar: %v", err)
	}
	return s
}

// planarTwoConnected generates a random planar 2-edge-connected graph:
// a fan-triangulated ring, which the generator guarantees planar, and ring
// edges make 2-edge-connected.
func planarTwoConnected(n int, seed int64) *graph.Graph {
	return graph.RandomPlanarLike(n, seed)
}

// TestBasicSingleFailureCoverage verifies the §4.2 guarantee: on
// 2-edge-connected networks with a genus-0 embedding, the Basic variant
// recovers from every single link failure for every affected pair.
func TestBasicSingleFailureCoverage(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := planarTwoConnected(8+int(seed%9), seed)
		sys := planarSystem(t, g)
		p := buildProtocol(t, g, sys, Basic, route.HopCount)
		for _, fs := range graph.SingleFailureScenarios(g) {
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
					if !r.Delivered() {
						t.Fatalf("seed %d failures %v: %d→%d outcome %v; want delivered",
							seed, fs, src, dst, r.Outcome)
					}
					if r.Stretch < 1-stretchEps {
						t.Fatalf("stretch %v < 1", r.Stretch)
					}
				}
			}
		}
	}
}

// TestFullMultiFailureCoverage is the paper's headline claim (§5): the Full
// variant delivers every packet under any failure combination that keeps
// source and destination connected — here across random planar topologies
// with genus-0 embeddings, failure sets of 2..6 links, both discriminators.
func TestFullMultiFailureCoverage(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 10; seed++ {
		g := planarTwoConnected(10+int(seed%8), seed*13)
		sys := planarSystem(t, g)
		for _, disc := range []route.Discriminator{route.HopCount, route.WeightSum} {
			p := buildProtocol(t, g, sys, Full, disc)
			for k := 2; k <= 6; k++ {
				scenarios, err := graph.SampleFailureScenarios(g, k, 6, seed*100+int64(k))
				if err != nil {
					continue // this k cannot keep the graph connected
				}
				for _, fs := range scenarios {
					for src := 0; src < g.NumNodes(); src++ {
						for dst := 0; dst < g.NumNodes(); dst++ {
							if src == dst {
								continue
							}
							total++
							r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
							if !r.Delivered() {
								t.Fatalf("seed %d disc %v failures %v: %d→%d outcome %v (§5 guarantee violated on a genus-0 embedding)",
									seed, disc, fs, src, dst, r.Outcome)
							}
						}
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no scenarios exercised")
	}
	t.Logf("full-variant delivery verified on %d walks", total)
}

// TestEmbeddingQualityMatters is a reproduction finding, pinned as a
// regression test: with an arbitrary (non-genus-0) rotation system the §5
// guarantee does NOT hold. On Abilene under the adjacency-order embedding,
// the Sunnyvale-LosAngeles link has both of its darts on a single face
// (§5.1's "curved cell"); deleting it splits that face into two boundary
// components, the packet follows the component that never reaches
// LosAngeles, and no router on it has a smaller discriminator than the
// header's — a forwarding loop under a SINGLE failure. The evaluation
// therefore uses genus-0 embeddings throughout (see EXPERIMENTS.md).
func TestEmbeddingQualityMatters(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	badSys := rotation.AdjacencyOrder(g)
	p := buildProtocol(t, g, badSys, Full, route.HopCount)

	sun := g.NodeByName("Sunnyvale")
	la := g.NodeByName("LosAngeles")
	link := g.FindLink(sun, la)
	// Confirm the precondition: both darts share a face in this embedding.
	ab, ba := rotation.DartsOf(link)
	if !badSys.Faces().SameFace(ab, ba) {
		t.Fatal("precondition changed: link darts no longer share a face")
	}
	r := p.Walk(g.NodeByName("Seattle"), la, graph.NewFailureSet(link))
	if r.Outcome != Looped {
		t.Fatalf("outcome = %v; this scenario is the documented single-failure loop under a bad embedding", r.Outcome)
	}

	// The same scenario under the genus-0 embedding delivers.
	goodSys, err := (embedding.Planar{}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	good := buildProtocol(t, g, goodSys, Full, route.HopCount)
	if r := good.Walk(g.NodeByName("Seattle"), la, graph.NewFailureSet(link)); !r.Delivered() {
		t.Fatalf("genus-0 embedding: outcome = %v; want delivered", r.Outcome)
	}
}

// TestArbitraryEmbeddingAlwaysTerminates: even under rotation systems with
// no quality guarantee, every walk must terminate with a classified
// outcome — the loop detector and isolation handling must never hang.
func TestArbitraryEmbeddingAlwaysTerminates(t *testing.T) {
	delivered, looped, total := 0, 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		g := graph.RandomTwoConnected(12, 22, seed)
		sys := rotation.Random(g, seed*31)
		p := buildProtocol(t, g, sys, Full, route.HopCount)
		scenarios, err := graph.SampleFailureScenarios(g, 3, 8, seed)
		if err != nil {
			continue
		}
		for _, fs := range scenarios {
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					total++
					r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
					switch r.Outcome {
					case Delivered:
						delivered++
					case Looped:
						looped++
					case Isolated:
					default:
						t.Fatalf("unclassified outcome %v", r.Outcome)
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no walks exercised")
	}
	t.Logf("random embeddings: %d delivered, %d looped of %d (loops expected without genus control)", delivered, looped, total)
}

// TestFullDisconnectingFailures: when failures disconnect src from dst no
// scheme can deliver; the walk must terminate with a drop, not spin.
func TestFullDisconnectingFailures(t *testing.T) {
	g := graph.Ring(6)
	sys := planarSystem(t, g)
	p := buildProtocol(t, g, sys, Full, route.HopCount)
	// Fail links 0 (0-1) and 3 (3-4): nodes {1,2,3} split from {4,5,0}.
	fs := graph.NewFailureSet(0, 3)
	if graph.ConnectedUnder(g, fs) {
		t.Fatal("test expects a disconnecting failure set")
	}
	r := p.Walk(1, 5, fs)
	if r.Delivered() {
		t.Fatal("delivered across a cut")
	}
	if r.Outcome != Looped && r.Outcome != Isolated {
		t.Fatalf("outcome = %v; want a detected drop", r.Outcome)
	}
	// Pairs on the same side still deliver.
	r = p.Walk(1, 3, fs)
	if !r.Delivered() {
		t.Fatalf("same-side pair not delivered: %v", r.Outcome)
	}
}

// TestNodeFailureRecovery: node failures are all-incident-link failures
// (§4); remaining pairs must still be delivered by the Full variant when
// connectivity survives, under the genus-0 embedding.
func TestNodeFailureRecovery(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	sys := planarSystem(t, g)
	p := buildProtocol(t, g, sys, Full, route.HopCount)
	for dead := 0; dead < g.NumNodes(); dead++ {
		fs := graph.FailNode(g, graph.NodeID(dead))
		reach := graph.ReachableUnder(g, firstOther(g, graph.NodeID(dead)), fs)
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst || src == dead || dst == dead {
					continue
				}
				r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
				if reach[src] && reach[dst] {
					if !r.Delivered() {
						t.Fatalf("node %s dead: %d→%d outcome %v; want delivered",
							g.Name(graph.NodeID(dead)), src, dst, r.Outcome)
					}
				} else if r.Delivered() {
					t.Fatalf("node %s dead: %d→%d delivered across a cut", g.Name(graph.NodeID(dead)), src, dst)
				}
			}
		}
	}
}

func firstOther(g *graph.Graph, not graph.NodeID) graph.NodeID {
	for i := 0; i < g.NumNodes(); i++ {
		if graph.NodeID(i) != not {
			return graph.NodeID(i)
		}
	}
	return graph.NoNode
}

// TestEpisodeDDsStrictlyDecrease: §5.3's progress argument — successive
// EventDetect stampings within one walk carry strictly decreasing DD.
func TestEpisodeDDsStrictlyDecrease(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := planarTwoConnected(12, seed)
		sys := planarSystem(t, g)
		p := buildProtocol(t, g, sys, Full, route.HopCount)
		scenarios, err := graph.SampleFailureScenarios(g, 4, 5, seed)
		if err != nil {
			continue
		}
		for _, fs := range scenarios {
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
					last := -1.0
					for _, s := range r.Steps {
						if s.Event != EventDetect {
							continue
						}
						if last >= 0 && s.Header.DD >= last {
							t.Fatalf("seed %d %d→%d: episode DD %v did not decrease below %v",
								seed, src, dst, s.Header.DD, last)
						}
						last = s.Header.DD
					}
				}
			}
		}
	}
}

// TestWalkTrivialCases: src == dst, unreachable destinations.
func TestWalkTrivialCases(t *testing.T) {
	g := graph.New(3, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")
	island := g.AddNode("island")
	g.MustAddLink(a, b, 1)
	g.Freeze()
	p := buildProtocol(t, g, rotation.AdjacencyOrder(g), Full, route.HopCount)

	r := p.Walk(a, a, nil)
	if !r.Delivered() || r.Cost != 0 || r.Hops() != 0 {
		t.Fatalf("self delivery wrong: %+v", r)
	}
	r = p.Walk(a, island, nil)
	if r.Outcome != NoRoute {
		t.Fatalf("unreachable outcome = %v; want no-route", r.Outcome)
	}
}

// TestIsolatedSource: every link at the source is down → Isolated.
func TestIsolatedSource(t *testing.T) {
	g := graph.Ring(4)
	p := buildProtocol(t, g, rotation.AdjacencyOrder(g), Full, route.HopCount)
	fs := graph.FailNode(g, 0)
	r := p.Walk(0, 2, fs)
	if r.Outcome != Isolated {
		t.Fatalf("outcome = %v; want isolated", r.Outcome)
	}
}

// TestWalkDeterminism: identical inputs give identical transcripts.
func TestWalkDeterminism(t *testing.T) {
	g := graph.RandomTwoConnected(10, 18, 4)
	sys := rotation.Random(g, 9)
	p := buildProtocol(t, g, sys, Full, route.HopCount)
	fs := graph.NewFailureSet(1, 5)
	a := p.Walk(0, 7, fs)
	b := p.Walk(0, 7, fs)
	if len(a.Steps) != len(b.Steps) || a.Cost != b.Cost || a.Outcome != b.Outcome {
		t.Fatal("walks not deterministic")
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

// TestWeightSumDiscriminatorDelivers: the paper's alternative DD function
// must preserve the delivery guarantee (genus-0 embedding).
func TestWeightSumDiscriminatorDelivers(t *testing.T) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	sys := planarSystem(t, g)
	p := buildProtocol(t, g, sys, Full, route.WeightSum)
	scenarios, err := graph.SampleFailureScenarios(g, 5, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range scenarios {
		for src := 0; src < g.NumNodes(); src += 3 {
			for dst := 0; dst < g.NumNodes(); dst += 2 {
				if src == dst {
					continue
				}
				r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
				if !r.Delivered() {
					t.Fatalf("failures %v: %d→%d outcome %v", fs, src, dst, r.Outcome)
				}
			}
		}
	}
}

// TestStretchAlwaysAtLeastOne across many random walks.
func TestStretchAlwaysAtLeastOne(t *testing.T) {
	g := planarTwoConnected(16, 11)
	sys := planarSystem(t, g)
	p := buildProtocol(t, g, sys, Full, route.HopCount)
	scenarios, err := graph.SampleFailureScenarios(g, 3, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range scenarios {
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				if r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs); r.Delivered() && r.Stretch < 1-stretchEps {
					t.Fatalf("stretch %v < 1", r.Stretch)
				}
			}
		}
	}
}

// TestBasicVariantTerminates: Basic may loop under multi-failures, but the
// walk engine must always terminate with a classified outcome.
func TestBasicVariantTerminates(t *testing.T) {
	g := graph.RandomTwoConnected(10, 16, 8)
	p := buildProtocol(t, g, rotation.Random(g, 2), Basic, route.HopCount)
	scenarios, err := graph.SampleFailureScenarios(g, 4, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range scenarios {
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
				switch r.Outcome {
				case Delivered, Looped, Isolated:
					// all legitimate for Basic under multi-failures
				default:
					t.Fatalf("outcome = %v", r.Outcome)
				}
			}
		}
	}
}

// TestFullCoverageOnISPTopologies runs the headline guarantee on the actual
// evaluation topologies with the genus-0 embeddings the experiments use.
func TestFullCoverageOnISPTopologies(t *testing.T) {
	// Failure counts follow the paper's per-topology experiments; Abilene
	// (14 links, 11 nodes) cannot stay connected above 4 failures.
	ks := map[string][]int{
		"abilene":   {1, 3, 4},
		"geant":     {1, 3, 5},
		"teleglobe": {1, 3, 5},
	}
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := tp.Graph
		sys := planarSystem(t, g)
		p := buildProtocol(t, g, sys, Full, route.HopCount)
		for _, k := range ks[name] {
			scenarios, err := graph.SampleFailureScenarios(g, k, 8, 3)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			for _, fs := range scenarios {
				for src := 0; src < g.NumNodes(); src++ {
					for dst := 0; dst < g.NumNodes(); dst++ {
						if src == dst {
							continue
						}
						r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
						if !r.Delivered() {
							t.Fatalf("%s failures %v: %s→%s outcome %v",
								name, fs, g.Name(graph.NodeID(src)), g.Name(graph.NodeID(dst)), r.Outcome)
						}
					}
				}
			}
		}
	}
}
