package core

import (
	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// walkState is the complete forwarding state of a packet at a router.
// Forwarding is a deterministic function of this state and the (static)
// failure set, so an exact repetition proves a forwarding loop.
type walkState struct {
	node    graph.NodeID
	ingress rotation.DartID
	pr      bool
	dd      float64
}

// Walk simulates one packet from src to dst under the given failure set and
// returns the full transcript. Failures are bidirectional (§4). The walk is
// purely combinatorial — no event timing — matching how the paper evaluates
// path stretch; package sim layers queuing and timing on the same rules.
func (p *Protocol) Walk(src, dst graph.NodeID, failures *graph.FailureSet) Result {
	var res Result
	if src == dst {
		res.Outcome = Delivered
		res.Steps = []Step{{Node: src, Ingress: rotation.NoDart, Egress: rotation.NoDart, Event: EventDeliver}}
		return res
	}
	if !p.tbl.Reachable(src, dst) {
		res.Outcome = NoRoute
		return res
	}

	hdr := Header{}
	node := src
	ingress := rotation.NoDart
	seen := make(map[walkState]bool)

	for len(res.Steps) <= p.maxSteps {
		if node == dst {
			res.Steps = append(res.Steps, Step{Node: node, Ingress: ingress, Egress: rotation.NoDart, Event: EventDeliver, Header: hdr})
			res.Outcome = Delivered
			res.Stretch = res.Cost / p.tbl.PathCost(src, dst)
			return res
		}
		state := walkState{node: node, ingress: ingress, pr: hdr.PR, dd: hdr.DD}
		if seen[state] {
			res.Outcome = Looped
			return res
		}
		seen[state] = true

		egress, event, newHdr, ok := p.decide(node, dst, ingress, hdr, failures)
		if !ok {
			res.Outcome = Isolated
			return res
		}
		res.Steps = append(res.Steps, Step{Node: node, Ingress: ingress, Egress: egress, Event: event, Header: newHdr})
		res.Cost += p.g.Weight(rotation.LinkOf(egress))
		hdr = newHdr
		node = p.headOf(egress)
		ingress = egress
	}
	res.Outcome = Looped // step cap backstop
	return res
}

// Decision is one router's handling of one packet, as returned by Decide.
type Decision struct {
	// Egress is the chosen outgoing dart (NoDart when OK is false).
	Egress rotation.DartID
	// Event classifies the decision.
	Event Event
	// Header is the packet header after processing.
	Header Header
	// OK is false when every usable egress was failed (isolated router).
	OK bool
}

// Decide performs a single forwarding decision at node for a packet bound
// to dst that arrived on ingress (rotation.NoDart at the origin) carrying
// hdr. It consults only links incident to node in the failure set — i.e.
// locally detectable failures — making it suitable for event-driven
// simulation where knowledge is local (package sim) as well as for Walk.
func (p *Protocol) Decide(node, dst graph.NodeID, ingress rotation.DartID, hdr Header, failures *graph.FailureSet) Decision {
	eg, ev, h, ok := p.decide(node, dst, ingress, hdr, failures)
	return Decision{Egress: eg, Event: ev, Header: h, OK: ok}
}

// decide implements the PR forwarding rule at one router. It returns the
// egress dart, the event classification and the updated header; ok is false
// when every usable egress is failed (isolated router).
//
// The resume branch re-enters decide with the PR bit cleared; the re-entry
// cannot resume again (its PR bit is clear), so recursion depth is ≤ 2.
func (p *Protocol) decide(node, dst graph.NodeID, ingress rotation.DartID, hdr Header, failures *graph.FailureSet) (rotation.DartID, Event, Header, bool) {
	if !hdr.PR {
		spLink := p.tbl.NextLink(node, dst)
		if spLink == graph.NoLink {
			return rotation.NoDart, 0, hdr, false
		}
		spDart := p.sys.OutgoingDart(node, spLink)
		if !failures.Down(spLink) {
			return spDart, EventRoute, hdr, true
		}
		// Failure detected on the shortest-path egress (§4.2/§4.3): set the
		// PR bit, stamp DD with this router's own distance discriminator,
		// and take the complementary cycle of the failed interface.
		hdr.PR = true
		if p.vrnt == Full {
			hdr.DD = p.dd(node, dst)
		}
		if eg, ok := p.firstUpComplementary(spDart, failures); ok {
			return eg, EventDetect, hdr, true
		}
		return rotation.NoDart, 0, hdr, false
	}

	// PR bit set: cycle following. The egress is the cycle-following table
	// entry for our ingress interface, φ(ingress).
	eg := p.sys.FaceNext(ingress)
	if !failures.Down(rotation.LinkOf(eg)) {
		return eg, EventCycle, hdr, true
	}
	// Failure encountered while cycle following: termination test.
	if p.vrnt == Basic || p.dd(node, dst) < hdr.DD {
		// §4.2: re-encountering a failure signals that cycle following is
		// no longer necessary. §4.3: strictly smaller DD. Clear the bit
		// and decide again at this node with shortest-path routing.
		hdr.PR = false
		resumedEg, event, newHdr, ok := p.decide(node, dst, rotation.NoDart, hdr, failures)
		if !ok {
			return rotation.NoDart, 0, hdr, false
		}
		if event == EventRoute {
			event = EventResume
		}
		return resumedEg, event, newHdr, true
	}
	// Own DD ≥ header DD: keep cycling on the complementary cycle of the
	// newly failed interface, header unchanged.
	if cand, ok := p.firstUpComplementary(eg, failures); ok {
		return cand, EventContinue, hdr, true
	}
	return rotation.NoDart, 0, hdr, false
}

// dd returns the discriminator the protocol stamps and compares: the raw
// route.Table value, or its order-preserving rank under Config.Quantise.
// Rank comparison is exactly equivalent to raw comparison (see Quantiser),
// so the two modes take identical decisions.
func (p *Protocol) dd(node, dst graph.NodeID) float64 {
	if p.quant != nil {
		return quantDD(p.quant.Rank(node, dst))
	}
	return p.tbl.DD(node, dst)
}

// firstUpComplementary walks the complementary chain σ(d), σ²(d), ... of a
// failed egress dart until an up link is found, applying the failure rule
// repeatedly when the complementary interface itself is down. Returns ok
// false when the rotation wraps around with every incident link failed.
func (p *Protocol) firstUpComplementary(failed rotation.DartID, failures *graph.FailureSet) (rotation.DartID, bool) {
	for cand := p.sys.Complementary(failed); cand != failed; cand = p.sys.Complementary(cand) {
		if !failures.Down(rotation.LinkOf(cand)) {
			return cand, true
		}
	}
	return rotation.NoDart, false
}

func (p *Protocol) headOf(d rotation.DartID) graph.NodeID {
	l := p.g.Link(rotation.LinkOf(d))
	if d%2 == 0 {
		return l.B
	}
	return l.A
}
