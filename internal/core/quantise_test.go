package core

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// TestQuantiserHopCountRanksEqualHops: hop counts toward a destination form
// a contiguous 0..d range (every node at hop k has a predecessor at k−1),
// so rank coding is the identity on the paper's default discriminator —
// the DSCP wire format of small-diameter networks is unchanged.
func TestQuantiserHopCountRanksEqualHops(t *testing.T) {
	for _, name := range []string{"paper", "abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := tp.Graph
		tbl := route.Build(g, route.HopCount)
		q := BuildQuantiser(tbl)
		for node := 0; node < g.NumNodes(); node++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				nid, did := graph.NodeID(node), graph.NodeID(dst)
				if !tbl.Reachable(nid, did) {
					if q.Rank(nid, did) != RankUnreachable {
						t.Fatalf("%s: unreachable %d→%d got rank %d", name, node, dst, q.Rank(nid, did))
					}
					continue
				}
				if got, want := q.Rank(nid, did), uint32(tbl.DD(nid, did)); got != want {
					t.Fatalf("%s: rank(%d→%d) = %d; hop count is %d", name, node, dst, got, want)
				}
			}
		}
		if q.Bits() != tbl.DDBits() {
			t.Fatalf("%s: quantised bits %d != raw hop-count bits %d", name, q.Bits(), tbl.DDBits())
		}
	}
}

// TestQuantiserWeightSumCompresses: weight-sum discriminators on distance
// weights need far more raw bits than the node count justifies; rank
// coding must bring them down to ⌈log2(nodes)⌉-ish while preserving order.
func TestQuantiserWeightSumCompresses(t *testing.T) {
	tp, err := topo.ByNameWeighted("geant", topo.DistanceWeights)
	if err != nil {
		t.Fatal(err)
	}
	tbl := route.Build(tp.Graph, route.WeightSum)
	q := BuildQuantiser(tbl)
	if raw := tbl.DDBits(); q.Bits() >= raw {
		t.Fatalf("quantised bits %d not below raw weight-sum bits %d", q.Bits(), raw)
	}
	n := uint32(tp.Graph.NumNodes())
	if q.MaxRank() >= n {
		t.Fatalf("max rank %d ≥ node count %d: ranks not dense", q.MaxRank(), n)
	}
	if !q.VerifyOrderPreserved(tbl) {
		t.Fatal("order not preserved on geant/weight-sum")
	}
}

// TestQuantiserOrderPreservedRandom sweeps random weighted graphs: the
// strict-decrease invariant reduces to VerifyOrderPreserved, checked
// exhaustively per destination.
func TestQuantiserOrderPreservedRandom(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		n := 6 + int(seed%12)
		g := graph.RandomTwoConnected(n, n+3+int(seed)%n, seed)
		for _, disc := range []route.Discriminator{route.HopCount, route.WeightSum} {
			tbl := route.Build(g, disc)
			q := BuildQuantiser(tbl)
			if !q.VerifyOrderPreserved(tbl) {
				t.Fatalf("seed %d disc %v: order violated", seed, disc)
			}
			if q.Bits() < 1 || q.MaxRank() >= uint32(n) {
				t.Fatalf("seed %d disc %v: bits %d maxRank %d out of range", seed, disc, q.Bits(), q.MaxRank())
			}
		}
	}
}

// TestQuantiserEqualValuesShareRank: ties in the raw discriminator must
// map to the same rank, or the ≥ branch of the termination test diverges.
func TestQuantiserEqualValuesShareRank(t *testing.T) {
	g := graph.Ring(8) // symmetric: nodes equidistant from dst share hops
	tbl := route.Build(g, route.HopCount)
	q := BuildQuantiser(tbl)
	// Toward node 0, nodes 1 and 7 are both one hop away.
	if q.Rank(1, 0) != q.Rank(7, 0) {
		t.Fatalf("equal hop counts got ranks %d and %d", q.Rank(1, 0), q.Rank(7, 0))
	}
	if q.Rank(4, 0) != 4 {
		t.Fatalf("antipode rank = %d; want 4", q.Rank(4, 0))
	}
}
