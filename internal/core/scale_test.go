package core

import (
	"testing"

	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/route"
)

// TestScaleLargePlanarNetwork runs the Full variant on a 200-node planar
// 2-edge-connected graph: the §5 guarantee and the walk engine must hold up
// well beyond ISP-backbone sizes.
func TestScaleLargePlanarNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	const n = 200
	g := graph.RandomPlanarLike(n, 424242)
	if !graph.TwoEdgeConnected(g) {
		t.Fatal("generator must produce a 2-edge-connected graph")
	}
	sys, err := (embedding.Planar{}).Embed(g)
	if err != nil {
		t.Fatalf("planar embed: %v", err)
	}
	if sys.Genus() != 0 {
		t.Fatalf("genus = %d", sys.Genus())
	}
	p, err := New(g, sys, route.Build(g, route.HopCount), Config{Variant: Full})
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := graph.SampleFailureScenarios(g, 8, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	walks := 0
	for _, fs := range scenarios {
		for src := 0; src < n; src += 7 {
			for dst := 0; dst < n; dst += 11 {
				if src == dst {
					continue
				}
				r := p.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
				if !r.Delivered() {
					t.Fatalf("failures %v: %d→%d outcome %v", fs, src, dst, r.Outcome)
				}
				walks++
			}
		}
	}
	t.Logf("scale: %d nodes, %d links, %d walks under 8-link failures, all delivered",
		n, g.NumLinks(), walks)
}

// TestScaleEmbeddingPipeline: the offline pipeline (embed + route build +
// protocol construction) on a 300-node graph stays well-formed.
func TestScaleEmbeddingPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	g := graph.RandomPlanarLike(300, 7)
	sys, err := (embedding.Auto{Seed: 3}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	tbl := route.Build(g, route.HopCount)
	if _, err := New(g, sys, tbl, Config{Variant: Full}); err != nil {
		t.Fatal(err)
	}
	// Sanity: faces partition darts at scale.
	total := 0
	for _, f := range sys.Faces().Faces {
		total += f.Len()
	}
	if total != sys.NumDarts() {
		t.Fatalf("face darts %d != %d", total, sys.NumDarts())
	}
}
