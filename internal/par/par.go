// Package par provides the deterministic fan-out primitive used by the
// compile path: a static block partition of an index range across worker
// goroutines.
//
// The partition is contiguous and depends only on (n, workers), never on
// scheduling, so any computation whose per-index work writes disjoint
// state produces bit-identical results at every worker count — the
// property the parallel FIB compiler's differential harnesses prove.
// This is the same sharding idiom the dataplane engine uses for its
// worker rings, lifted out so the compiler, quantiser and recompiler can
// share it.
package par

import (
	"runtime"
	"sync"
)

// minFanOut is the index-range size below which Workers refuses to fan
// out: under ~64 items the goroutine handoff costs more than the work.
const minFanOut = 64

// Workers returns the worker count Auto mode uses for n independent
// items: GOMAXPROCS capped so every worker gets a meaningful span, and 1
// (sequential) when n is below the fan-out floor.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < minFanOut || w < 2 {
		return 1
	}
	if max := n / (minFanOut / 2); w > max {
		w = max
	}
	return w
}

// RangeObserver watches a fan-out: it is called on each worker's
// goroutine with the range the worker is about to process, and the
// closure it returns (which may be nil) runs when that range finishes —
// even if fn panics. The tracing integration hangs per-worker child
// spans off this hook without par importing the telemetry package.
type RangeObserver func(worker, lo, hi int) func()

// For runs fn over the contiguous spans of a static partition of [0, n)
// into `workers` blocks, one goroutine per block, and waits for all of
// them. fn(worker, lo, hi) processes indices [lo, hi) and must only
// write state that is disjoint per index (or per worker, for scratch
// keyed by the worker number). workers <= 0 selects Workers(n); an
// explicit workers == 1 — or n too small to split — runs fn inline with
// no goroutines. A panic in any worker is re-raised on the caller after
// the remaining workers finish, so partial fan-outs never leak.
func For(n, workers int, fn func(worker, lo, hi int)) {
	ForObserved(n, workers, nil, fn)
}

// ForObserved is For with a RangeObserver around every worker range
// (nil observes nothing and is exactly For).
func ForObserved(n, workers int, obs RangeObserver, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers(n)
	}
	if workers > n {
		workers = n
	}
	run := fn
	if obs != nil {
		run = func(w, lo, hi int) {
			if done := obs(w, lo, hi); done != nil {
				defer done()
			}
			fn(w, lo, hi)
		}
	}
	if workers <= 1 {
		run(0, 0, n)
		return
	}
	span := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			run(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
