package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce fans out at several worker counts and
// checks the static partition covers [0, n) exactly once.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 200} {
			hits := make([]int32, n)
			For(n, w, func(_, lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d w=%d: bad span [%d,%d)", n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

// TestForWorkerNumbersAreDistinct checks each span sees a distinct
// worker number inside [0, workers) — per-worker scratch relies on it.
func TestForWorkerNumbersAreDistinct(t *testing.T) {
	const n, workers = 100, 7
	seen := make([]int32, workers)
	For(n, workers, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker %d out of range", w)
			return
		}
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c > 1 {
			t.Fatalf("worker %d ran %d spans; spans must not share numbers", w, c)
		}
	}
}

// TestForPartitionIsDeterministic pins that the span boundaries depend
// only on (n, workers) — the basis for bit-identical parallel output
// whenever downstream state is keyed by worker number.
func TestForPartitionIsDeterministic(t *testing.T) {
	want := map[int][2]int{}
	span := (1000 + 7) / 8
	for w := 0; w < 8; w++ {
		lo, hi := w*span, (w+1)*span
		if hi > 1000 {
			hi = 1000
		}
		want[w] = [2]int{lo, hi}
	}
	got := map[int][2]int{}
	ch := make(chan [3]int, 8)
	For(1000, 8, func(w, lo, hi int) { ch <- [3]int{w, lo, hi} })
	close(ch)
	for s := range ch {
		got[s[0]] = [2]int{s[1], s[2]}
	}
	for w, sp := range want {
		if got[w] != sp {
			t.Fatalf("worker %d span %v, want %v", w, got[w], sp)
		}
	}
}

// TestForPanicPropagates checks a worker panic surfaces on the caller
// after the fan-out drains.
func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(200, 4, func(_, lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("For returned despite worker panic")
}

// TestWorkersFloor pins the sequential floor: small ranges never fan out.
func TestWorkersFloor(t *testing.T) {
	if w := Workers(minFanOut - 1); w != 1 {
		t.Fatalf("Workers(%d) = %d, want 1", minFanOut-1, w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers huge = %d exceeds GOMAXPROCS", w)
	}
}
