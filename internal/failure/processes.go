package failure

import (
	"fmt"
	"math/rand"
	"time"

	"recycle/internal/graph"
)

// MaxOutages bounds how many outages one Generate call may draw
// (mirroring parseLinkList's range cap): a hostile or mistyped spec —
// nanosecond MTBF means, a billion flaps — fails with a descriptive
// error instead of allocating without bound. At ~50 bytes per outage the
// cap is ~50 MB, far beyond any scenario a simulator run can replay.
const MaxOutages = 1 << 20

// ---------------------------------------------------------------------------
// Independent per-link MTBF/MTTR (exponential up/down renewal process)
// ---------------------------------------------------------------------------

// MTBF fails every link independently with exponentially distributed up
// and down dwell times — the classic availability model: MeanUp is the
// mean time between failures, MeanDown the mean time to repair. Every
// link starts up and alternates up→down→up until the horizon. Each link
// draws from its own seed-derived stream, so one link's history is
// invariant under changes to every other link's.
type MTBF struct {
	// MeanUp is the mean up dwell (time between failures) per link.
	MeanUp time.Duration
	// MeanDown is the mean down dwell (time to repair) per link.
	MeanDown time.Duration
	// Links optionally restricts the process to these links (nil = all).
	Links []graph.LinkID
}

// Name implements Process.
func (m MTBF) Name() string { return "mtbf" }

// Validate implements Process.
func (m MTBF) Validate() error {
	if m.MeanUp <= 0 {
		return fmt.Errorf("failure: mtbf process has non-positive mean up time %v", m.MeanUp)
	}
	if m.MeanDown <= 0 {
		return fmt.Errorf("failure: mtbf process has non-positive mean down time %v", m.MeanDown)
	}
	return nil
}

// Generate implements Process.
func (m MTBF) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	links := m.Links
	if links == nil {
		links = make([]graph.LinkID, g.NumLinks())
		for i := range links {
			links[i] = graph.LinkID(i)
		}
	}
	sc := &Scenario{Name: fmt.Sprintf("mtbf:up=%v,down=%v@%d", m.MeanUp, m.MeanDown, seed)}
	for _, l := range links {
		rng := rand.New(rand.NewSource(subSeed(seed, int64(l))))
		for t := time.Duration(0); t < horizon; {
			t += expDwell(rng, m.MeanUp)
			if t >= horizon {
				break
			}
			if len(sc.Outages) >= MaxOutages {
				return nil, fmt.Errorf("failure: mtbf up=%v,down=%v draws more than %d outages over a %v horizon; means are implausibly small",
					m.MeanUp, m.MeanDown, MaxOutages, horizon)
			}
			down := expDwell(rng, m.MeanDown)
			sc.Outages = append(sc.Outages, LinkOutage(l, t, t+down))
			t += down
		}
	}
	return sc, nil
}

// expDwell draws an exponential dwell with the given mean.
func expDwell(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		// ExpFloat64 can round to zero at nanosecond scale; a zero dwell
		// would produce an empty interval.
		d = 1
	}
	return d
}

// ---------------------------------------------------------------------------
// Flap storm (one link bouncing up/down — the §7 damping scenario)
// ---------------------------------------------------------------------------

// Flap is a deterministic flap storm: the link goes down at At and then
// bounces — down for Period/2, up for Period/2 — Flaps times before
// staying up. It reproduces the paper's §7 flap-damping discussion as a
// scenario the harness can draw alongside stochastic noise.
type Flap struct {
	// Link is the flapping link.
	Link graph.LinkID
	// At is the first failure instant.
	At time.Duration
	// Flaps is how many down phases occur (≥ 1).
	Flaps int
	// Period is one full down+up cycle (down Period/2, up Period/2).
	Period time.Duration
}

// Name implements Process.
func (f Flap) Name() string { return "flap" }

// Validate implements Process.
func (f Flap) Validate() error {
	if f.Link < 0 {
		return fmt.Errorf("failure: flap process has negative link %d", f.Link)
	}
	if f.At < 0 {
		return fmt.Errorf("failure: flap process has negative start %v", f.At)
	}
	if f.Flaps < 1 {
		return fmt.Errorf("failure: flap process needs at least one flap, got %d", f.Flaps)
	}
	if f.Flaps > MaxOutages {
		return fmt.Errorf("failure: flap process with %d flaps is implausibly large (max %d)", f.Flaps, MaxOutages)
	}
	if f.Period <= 0 {
		return fmt.Errorf("failure: flap process has non-positive period %v", f.Period)
	}
	return nil
}

// Generate implements Process. Flap is fully scripted: the seed does not
// enter, so every draw replays the identical storm.
func (f Flap) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if int(f.Link) >= g.NumLinks() {
		return nil, fmt.Errorf("failure: flap link %d outside [0, %d)", f.Link, g.NumLinks())
	}
	sc := &Scenario{Name: fmt.Sprintf("flap:link=%d,at=%v,flaps=%d,period=%v", f.Link, f.At, f.Flaps, f.Period)}
	half := f.Period / 2
	if half <= 0 {
		half = 1
	}
	for i := 0; i < f.Flaps; i++ {
		from := f.At + time.Duration(i)*f.Period
		sc.Outages = append(sc.Outages, LinkOutage(f.Link, from, from+half))
	}
	return sc, nil
}

// ---------------------------------------------------------------------------
// SRLG (shared-risk link group — one fiber cut, many links)
// ---------------------------------------------------------------------------

// SRLG is a shared-risk link group: one underlying fault (a fiber cut, a
// conduit dig-up) takes every member link down simultaneously at At; all
// members are repaired together after Down. It is the canonical
// correlated-failure model the independent-MTBF assumption misses.
type SRLG struct {
	// Links are the group members sharing the risk.
	Links []graph.LinkID
	// At is the cut instant.
	At time.Duration
	// Down is how long the repair takes (0 = rest of the run).
	Down time.Duration
}

// Name implements Process.
func (s SRLG) Name() string { return "srlg" }

// Validate implements Process.
func (s SRLG) Validate() error {
	if len(s.Links) == 0 {
		return fmt.Errorf("failure: srlg process has no member links")
	}
	for _, l := range s.Links {
		if l < 0 {
			return fmt.Errorf("failure: srlg process has negative link %d", l)
		}
	}
	if s.At < 0 {
		return fmt.Errorf("failure: srlg process has negative cut time %v", s.At)
	}
	if s.Down < 0 {
		return fmt.Errorf("failure: srlg process has negative repair time %v", s.Down)
	}
	return nil
}

// Generate implements Process. SRLG is scripted; the seed does not enter.
func (s SRLG) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	to := Forever
	if s.Down > 0 {
		to = s.At + s.Down
	}
	sc := &Scenario{Name: fmt.Sprintf("srlg:%d links,at=%v", len(s.Links), s.At)}
	for _, l := range s.Links {
		if int(l) >= g.NumLinks() {
			return nil, fmt.Errorf("failure: srlg link %d outside [0, %d)", l, g.NumLinks())
		}
		sc.Outages = append(sc.Outages, LinkOutage(l, s.At, to))
	}
	return sc, nil
}

// ---------------------------------------------------------------------------
// Node outage (a dead router: every incident link down)
// ---------------------------------------------------------------------------

// NodeOutage takes a whole node down at At for Down: the timed-event
// counterpart of graph.FailNode (§4 models a dead router as all its links
// failing bidirectionally).
type NodeOutage struct {
	// Node is the failing router.
	Node graph.NodeID
	// At is the failure instant.
	At time.Duration
	// Down is the outage duration (0 = rest of the run).
	Down time.Duration
}

// Name implements Process.
func (n NodeOutage) Name() string { return "node" }

// Validate implements Process.
func (n NodeOutage) Validate() error {
	if n.Node < 0 {
		return fmt.Errorf("failure: node process has negative node %d", n.Node)
	}
	if n.At < 0 {
		return fmt.Errorf("failure: node process has negative start %v", n.At)
	}
	if n.Down < 0 {
		return fmt.Errorf("failure: node process has negative duration %v", n.Down)
	}
	return nil
}

// Generate implements Process. NodeOutage is scripted; the seed does not
// enter.
func (n NodeOutage) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if int(n.Node) >= g.NumNodes() {
		return nil, fmt.Errorf("failure: node %d outside [0, %d)", n.Node, g.NumNodes())
	}
	to := Forever
	if n.Down > 0 {
		to = n.At + n.Down
	}
	return &Scenario{
		Name:    fmt.Sprintf("node:id=%d,at=%v", n.Node, n.At),
		Outages: []Outage{NodeOutageAt(n.Node, n.At, to)},
	}, nil
}

// ---------------------------------------------------------------------------
// Regional outage (everything within a hop radius of a center)
// ---------------------------------------------------------------------------

// Regional takes down every node within Radius hops of Center at At for
// Down — a power cut or natural disaster over one area of the topology.
// The region is the hop-ball on the shipped topology itself, so it
// follows the embedding's geography on the generator families (a grid
// region is a diamond of neighbouring routers, a ring region an arc).
type Regional struct {
	// Center is the epicenter node.
	Center graph.NodeID
	// Radius is the hop radius; 0 fails the center alone.
	Radius int
	// At is the outage instant.
	At time.Duration
	// Down is the outage duration (0 = rest of the run).
	Down time.Duration
}

// Name implements Process.
func (r Regional) Name() string { return "region" }

// Validate implements Process.
func (r Regional) Validate() error {
	if r.Center < 0 {
		return fmt.Errorf("failure: region process has negative center %d", r.Center)
	}
	if r.Radius < 0 {
		return fmt.Errorf("failure: region process has negative radius %d", r.Radius)
	}
	if r.At < 0 {
		return fmt.Errorf("failure: region process has negative start %v", r.At)
	}
	if r.Down < 0 {
		return fmt.Errorf("failure: region process has negative duration %v", r.Down)
	}
	return nil
}

// Generate implements Process. Regional is scripted; the seed does not
// enter.
func (r Regional) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if int(r.Center) >= g.NumNodes() {
		return nil, fmt.Errorf("failure: region center %d outside [0, %d)", r.Center, g.NumNodes())
	}
	to := Forever
	if r.Down > 0 {
		to = r.At + r.Down
	}
	sc := &Scenario{Name: fmt.Sprintf("region:center=%d,radius=%d,at=%v", r.Center, r.Radius, r.At)}
	for _, n := range HopBall(g, r.Center, r.Radius) {
		sc.Outages = append(sc.Outages, NodeOutageAt(n, r.At, to))
	}
	return sc, nil
}

// HopBall returns the nodes within radius hops of center (including the
// center itself), in ascending NodeID order.
func HopBall(g *graph.Graph, center graph.NodeID, radius int) []graph.NodeID {
	var ball []graph.NodeID
	for n, d := range graph.HopDistances(g, center, nil) {
		if d >= 0 && d <= radius {
			ball = append(ball, graph.NodeID(n))
		}
	}
	return ball
}
