// Package failure generates, schedules and replays failure scenarios
// against the simulator. The paper's headline claim — zero loss under any
// failure combination that leaves the source–destination pair connected —
// was exercised so far only by hand-scheduled one- and two-link outages;
// this package is the subsystem that probes the boundary systematically,
// the way the related work does (Chiesa et al. stress static failover
// under adversarial multi-failure sets; Enhanced MRC measures recovery
// from correlated multiple failures).
//
// A Process is an immutable description of a stochastic or scripted
// failure model — independent per-link MTBF/MTTR, flap storms, SRLG
// shared-risk groups, node outages, regional outages — whose Generate
// draws one concrete Scenario deterministically per seed. A Scenario is a
// set of outage intervals over links and nodes; Events normalises it into
// the fail/repair event sequence the simulator replays (overlapping
// outages of one link are merged, so repairing one cause never
// resurrects a link another cause still holds down). An Oracle answers
// the question the guarantee hinges on: was this src–dst pair connected
// at (or throughout) a given instant under the scenario's physical link
// state — classifying every observed loss as excusable (pair
// disconnected) or a violation (pair connected: the loss counts against
// the scheme).
//
// Scenario specs are compact text, mirroring traffic.ParseSpec:
//
//	mtbf:up=10s,down=200ms
//	flap:link=3,at=1s,flaps=10,period=20ms
//	srlg:links=3-7;9,at=1s,down=500ms
//	node:id=4,at=1s,down=500ms
//	region:center=12,radius=2,at=1s,down=500ms
//
// and '+'-joined specs (or scripted scenario files, one spec per line)
// compose into correlated multi-process scenarios.
package failure

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"recycle/internal/graph"
)

// Forever marks an outage that is never repaired within the run.
const Forever = time.Duration(math.MaxInt64)

// Outage is one contiguous down interval of a link or a node. Exactly one
// of Link/Node is set (the other holds its No* sentinel). The interval is
// [From, To): the element fails at From and is repaired at To; To ==
// Forever means it stays down for the rest of the run.
type Outage struct {
	Link graph.LinkID
	Node graph.NodeID
	From time.Duration
	To   time.Duration
}

// LinkOutage returns the outage taking link l down during [from, to).
func LinkOutage(l graph.LinkID, from, to time.Duration) Outage {
	return Outage{Link: l, Node: graph.NoNode, From: from, To: to}
}

// NodeOutageAt returns the outage taking node n (every incident link)
// down during [from, to).
func NodeOutageAt(n graph.NodeID, from, to time.Duration) Outage {
	return Outage{Link: graph.NoLink, Node: n, From: from, To: to}
}

// String renders the outage for error messages and debugging.
func (o Outage) String() string {
	subject := fmt.Sprintf("link %d", o.Link)
	if o.Node != graph.NoNode {
		subject = fmt.Sprintf("node %d", o.Node)
	}
	until := "forever"
	if o.To != Forever {
		until = o.To.String()
	}
	return fmt.Sprintf("%s down [%v, %s)", subject, o.From, until)
}

// Scenario is one concrete failure history: a named set of outage
// intervals, as drawn by a Process or assembled by hand. Order is
// irrelevant; Events and Oracle normalise overlaps.
type Scenario struct {
	// Name identifies the generating process (and seed) in reports.
	Name string
	// Outages are the down intervals. Overlapping intervals of the same
	// link are legal and mean the link is down for their union.
	Outages []Outage
}

// Validate checks every outage against the graph: known link/node IDs,
// exactly one subject per outage, non-negative times, From < To.
func (sc *Scenario) Validate(g *graph.Graph) error {
	for i, o := range sc.Outages {
		hasLink := o.Link != graph.NoLink
		hasNode := o.Node != graph.NoNode
		if hasLink == hasNode {
			return fmt.Errorf("failure: outage %d of %q must name exactly one link or node", i, sc.Name)
		}
		if hasLink && (o.Link < 0 || int(o.Link) >= g.NumLinks()) {
			return fmt.Errorf("failure: outage %d of %q: link %d outside [0, %d)", i, sc.Name, o.Link, g.NumLinks())
		}
		if hasNode && (o.Node < 0 || int(o.Node) >= g.NumNodes()) {
			return fmt.Errorf("failure: outage %d of %q: node %d outside [0, %d)", i, sc.Name, o.Node, g.NumNodes())
		}
		if o.From < 0 {
			return fmt.Errorf("failure: outage %d of %q: negative start %v", i, sc.Name, o.From)
		}
		if o.To <= o.From {
			return fmt.Errorf("failure: outage %d of %q: empty interval [%v, %v)", i, sc.Name, o.From, o.To)
		}
	}
	return nil
}

// Event is one normalised link state transition of a scenario.
type Event struct {
	At   time.Duration
	Link graph.LinkID
	// Down is true for a failure, false for a repair.
	Down bool
}

// Events expands the scenario into the normalised link event sequence:
// node outages become outages of every incident link, overlapping
// intervals of one link are merged into their union, and the resulting
// down/up transitions are returned sorted by time (failures before
// repairs at equal instants, then by link). Repairs at Forever are
// omitted — the link simply stays down. The sequence is exactly what
// Simulator.ApplyScenario schedules and what the Oracle indexes, so the
// two can never disagree about physical state.
func (sc *Scenario) Events(g *graph.Graph) ([]Event, error) {
	if err := sc.Validate(g); err != nil {
		return nil, err
	}
	intervals := make(map[graph.LinkID][][2]time.Duration)
	add := func(l graph.LinkID, from, to time.Duration) {
		intervals[l] = append(intervals[l], [2]time.Duration{from, to})
	}
	for _, o := range sc.Outages {
		if o.Node != graph.NoNode {
			for _, nb := range g.Neighbors(o.Node) {
				add(nb.Link, o.From, o.To)
			}
			continue
		}
		add(o.Link, o.From, o.To)
	}
	var events []Event
	for l, ivs := range intervals {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		// Merge overlapping or touching intervals into their union: a link
		// held down by two causes repairs only when the last one releases.
		curFrom, curTo := ivs[0][0], ivs[0][1]
		flush := func() {
			events = append(events, Event{At: curFrom, Link: l, Down: true})
			if curTo != Forever {
				events = append(events, Event{At: curTo, Link: l, Down: false})
			}
		}
		for _, iv := range ivs[1:] {
			if iv[0] > curTo {
				flush()
				curFrom, curTo = iv[0], iv[1]
				continue
			}
			if iv[1] > curTo {
				curTo = iv[1]
			}
		}
		flush()
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if events[i].Down != events[j].Down {
			return events[i].Down
		}
		return events[i].Link < events[j].Link
	})
	return events, nil
}

// String summarises the scenario.
func (sc *Scenario) String() string {
	return fmt.Sprintf("scenario %q: %d outages", sc.Name, len(sc.Outages))
}

// Process is an immutable description of a failure model. Generate draws
// one concrete scenario for a graph and run horizon, deterministically
// per seed: the same (graph, horizon, seed) triple always yields the
// identical scenario, so a Monte-Carlo sweep can replay every draw
// against every scheme under comparison.
type Process interface {
	// Name identifies the process kind in reports ("mtbf", "srlg", …).
	Name() string
	// Validate reports configuration errors descriptively, before any
	// scenario is drawn.
	Validate() error
	// Generate draws the scenario for one seeded run.
	Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error)
}

// Multi composes processes: the generated scenario is the union of every
// member's outages (each member draws from a distinct sub-seed), which is
// how correlated storms are layered on top of background MTBF noise.
type Multi struct {
	Processes []Process
}

// Name implements Process.
func (m Multi) Name() string {
	names := make([]string, len(m.Processes))
	for i, p := range m.Processes {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Validate implements Process.
func (m Multi) Validate() error {
	if len(m.Processes) == 0 {
		return fmt.Errorf("failure: multi process has no members")
	}
	for _, p := range m.Processes {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Generate implements Process.
func (m Multi) Generate(g *graph.Graph, horizon time.Duration, seed int64) (*Scenario, error) {
	out := &Scenario{Name: fmt.Sprintf("%s@%d", m.Name(), seed)}
	for i, p := range m.Processes {
		// Distinct sub-seed per member: composing A+B never replays A's
		// draw inside B, whatever the member order.
		sub, err := p.Generate(g, horizon, subSeed(seed, int64(i)))
		if err != nil {
			return nil, err
		}
		out.Outages = append(out.Outages, sub.Outages...)
	}
	return out, nil
}

// DrawSeed derives the seed of Monte-Carlo draw i from a sweep's master
// seed: the same splitmix64 sequencing Multi uses for its members, so a
// resilience sweep's draws are mutually decorrelated yet each draw is
// replayable against every scheme under comparison.
func DrawSeed(seed int64, draw int) int64 { return subSeed(seed, int64(draw)) }

// subSeed derives a decorrelated child seed via splitmix64, the standard
// seed-sequencing finaliser; adjacent (seed, i) pairs yield unrelated
// streams.
func subSeed(seed, i int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
