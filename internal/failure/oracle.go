package failure

import (
	"sort"
	"time"

	"recycle/internal/graph"
)

// Oracle answers connectivity questions about a scenario: given the
// physical link state the scenario imposes at an instant (or across an
// interval), is a src–dst pair connected? It is the referee of the
// paper's guarantee — a packet loss is *excusable* exactly when the pair
// was physically disconnected at some point of the packet's lifetime; a
// loss while the pair stayed connected throughout is a *violation* that
// counts against the scheme.
//
// The oracle indexes the identical normalised event sequence that
// Simulator.ApplyScenario schedules (Scenario.Events), so the referee
// and the replay can never disagree about which links were down when.
type Oracle struct {
	g *graph.Graph
	// starts[i] is the instant epoch i begins; epoch 0 starts at 0 with
	// no scenario failures. sets[i] is the failure set live throughout
	// [starts[i], starts[i+1]).
	starts []time.Duration
	sets   []*graph.FailureSet
	// reach caches per-epoch reachability closures, filled lazily: one
	// BFS answers every dst query for that (epoch, src) pair.
	reach map[reachKey][]bool
}

type reachKey struct {
	epoch int
	src   graph.NodeID
}

// NewOracle indexes a scenario's link-state timeline over a graph.
func NewOracle(g *graph.Graph, sc *Scenario) (*Oracle, error) {
	events, err := sc.Events(g)
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		g:      g,
		starts: []time.Duration{0},
		sets:   []*graph.FailureSet{graph.NewFailureSet()},
		reach:  make(map[reachKey][]bool),
	}
	cur := graph.NewFailureSet()
	for i := 0; i < len(events); {
		at := events[i].At
		// Fold every transition at this instant into one epoch boundary.
		for i < len(events) && events[i].At == at {
			if events[i].Down {
				cur.Add(events[i].Link)
			} else {
				cur.Remove(events[i].Link)
			}
			i++
		}
		if at == 0 {
			// Outages starting at t=0: epoch 0 already covers the instant.
			o.sets[0] = cur.Clone()
			continue
		}
		o.starts = append(o.starts, at)
		o.sets = append(o.sets, cur.Clone())
	}
	return o, nil
}

// epochAt returns the index of the epoch containing instant t.
func (o *Oracle) epochAt(t time.Duration) int {
	// First start > t, minus one; starts[0] == 0 bounds the search.
	i := sort.Search(len(o.starts), func(i int) bool { return o.starts[i] > t })
	return i - 1
}

// FailuresAt returns the scenario's failure set live at instant t. The
// caller must not mutate it.
func (o *Oracle) FailuresAt(t time.Duration) *graph.FailureSet {
	if t < 0 {
		t = 0
	}
	return o.sets[o.epochAt(t)]
}

// connectedEpoch answers reachability for one epoch, caching the BFS
// closure from src so repeated queries (every packet of a flow) are one
// map lookup.
func (o *Oracle) connectedEpoch(epoch int, src, dst graph.NodeID) bool {
	key := reachKey{epoch: epoch, src: src}
	r, ok := o.reach[key]
	if !ok {
		r = graph.ReachableUnder(o.g, src, o.sets[epoch])
		o.reach[key] = r
	}
	return r[dst]
}

// ConnectedAt reports whether src and dst are physically connected at
// instant t under the scenario.
func (o *Oracle) ConnectedAt(src, dst graph.NodeID, t time.Duration) bool {
	if t < 0 {
		t = 0
	}
	return o.connectedEpoch(o.epochAt(t), src, dst)
}

// ConnectedThroughout reports whether src and dst stayed connected at
// every instant of [from, to]. This is the violation predicate: a packet
// created at from and lost at to whose pair was connected throughout had
// a live path at all times — its loss counts against the scheme. A pair
// disconnected in any overlapping epoch excuses the loss.
func (o *Oracle) ConnectedThroughout(src, dst graph.NodeID, from, to time.Duration) bool {
	if from < 0 {
		from = 0
	}
	if to < from {
		to = from
	}
	for e := o.epochAt(from); e < len(o.starts) && o.starts[e] <= to; e++ {
		if !o.connectedEpoch(e, src, dst) {
			return false
		}
	}
	return true
}

// StableThroughout reports whether the scenario's link state held
// constant over (from, to] — no failure or repair took effect strictly
// after from and up to to. A transition exactly at from does not count:
// a packet created in the same instant a link flips lives entirely under
// the new state. This is the paper's guarantee regime discriminator: §1
// promises zero loss for any *static* failure combination that leaves
// the pair connected, while §7 separately discusses (and damps) the
// transients of packets in flight across a state change.
func (o *Oracle) StableThroughout(from, to time.Duration) bool {
	if from < 0 {
		from = 0
	}
	return o.epochAt(from) == o.epochAt(to)
}

// Epochs returns the number of distinct link-state periods the scenario
// induces (≥ 1; epoch 0 is the pre-failure state).
func (o *Oracle) Epochs() int { return len(o.starts) }

// EpochStart returns the instant epoch i begins (epoch 0 starts at 0).
// It is the key that aligns a telemetry.Timeline's epochs with the
// oracle's: both fold same-instant events into one boundary.
func (o *Oracle) EpochStart(i int) time.Duration { return o.starts[i] }
