package failure

import (
	"math"
	"testing"
	"time"

	"recycle/internal/graph"
)

// TestMTBFStatistics pins the empirical up/down dwell means of the MTBF
// renewal process against the configured MTBF/MTTR, mirroring the
// Poisson/MMPP sanity tests in internal/traffic: a long horizon on a
// small graph yields thousands of renewal cycles, whose sample means must
// land within a few percent of the exponentials' parameters.
func TestMTBFStatistics(t *testing.T) {
	g := graph.Ring(4)
	meanUp, meanDown := 2*time.Second, 300*time.Millisecond
	p := MTBF{MeanUp: meanUp, MeanDown: meanDown}
	horizon := 4000 * time.Second
	sc, err := p.Generate(g, horizon, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-link dwell sequences: up dwell i is the gap between
	// repair i-1 (or 0) and failure i; down dwell i is the outage length.
	type hist struct {
		lastUp time.Duration
		ups    []time.Duration
		downs  []time.Duration
	}
	perLink := make(map[graph.LinkID]*hist)
	for _, o := range sc.Outages {
		h := perLink[o.Link]
		if h == nil {
			h = &hist{}
			perLink[o.Link] = h
		}
		h.ups = append(h.ups, o.From-h.lastUp)
		h.downs = append(h.downs, o.To-o.From)
		h.lastUp = o.To
	}
	if len(perLink) != g.NumLinks() {
		t.Fatalf("MTBF touched %d links; want all %d over a %v horizon", len(perLink), g.NumLinks(), horizon)
	}
	var allUps, allDowns []time.Duration
	for _, h := range perLink {
		allUps = append(allUps, h.ups...)
		allDowns = append(allDowns, h.downs...)
	}
	// ~2000 cycles per link × 4 links: the sample mean of an exponential
	// with n ≈ 8000 draws has σ/√n ≈ 1.1% relative error; 5% is ~4.5σ.
	if n := len(allUps); n < 4000 {
		t.Fatalf("only %d renewal cycles; horizon too short for the statistical assertion", n)
	}
	assertMeanWithin(t, "up dwell (MTBF)", allUps, meanUp, 0.05)
	assertMeanWithin(t, "down dwell (MTTR)", allDowns, meanDown, 0.05)
}

func assertMeanWithin(t *testing.T, what string, xs []time.Duration, want time.Duration, tol float64) {
	t.Helper()
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	if rel := math.Abs(mean-float64(want)) / float64(want); rel > tol {
		t.Fatalf("%s empirical mean %v vs configured %v: relative error %.1f%% > %.0f%%",
			what, time.Duration(mean), want, 100*rel, 100*tol)
	}
}

func TestMTBFDeterministicAndLinkLocal(t *testing.T) {
	g := graph.Ring(8)
	p := MTBF{MeanUp: time.Second, MeanDown: 100 * time.Millisecond}
	a, err := p.Generate(g, 10*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(g, 10*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outages) != len(b.Outages) {
		t.Fatalf("same seed drew %d vs %d outages", len(a.Outages), len(b.Outages))
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatalf("same seed diverged at outage %d: %v vs %v", i, a.Outages[i], b.Outages[i])
		}
	}
	c, err := p.Generate(g, 10*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outages) == len(c.Outages) {
		same := true
		for i := range a.Outages {
			if a.Outages[i] != c.Outages[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds drew the identical scenario")
		}
	}
	// Restricting to a link subset replays exactly those links' histories:
	// each link draws from its own seed-derived stream (link-local
	// invariance), so the restriction changes nothing for the survivors.
	restricted, err := MTBF{MeanUp: time.Second, MeanDown: 100 * time.Millisecond,
		Links: []graph.LinkID{2, 5}}.Generate(g, 10*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	var fromFull []Outage
	for _, o := range a.Outages {
		if o.Link == 2 || o.Link == 5 {
			fromFull = append(fromFull, o)
		}
	}
	if len(restricted.Outages) != len(fromFull) {
		t.Fatalf("restricted draw has %d outages; the full draw's links 2,5 histories have %d",
			len(restricted.Outages), len(fromFull))
	}
	got := make(map[Outage]bool, len(restricted.Outages))
	for _, o := range restricted.Outages {
		got[o] = true
	}
	for _, o := range fromFull {
		if !got[o] {
			t.Fatalf("restricted draw misses outage %v present in the full draw", o)
		}
	}
}

func TestFlapGenerate(t *testing.T) {
	g := graph.Ring(6)
	f := Flap{Link: 2, At: time.Second, Flaps: 3, Period: 100 * time.Millisecond}
	sc, err := f.Generate(g, 10*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Outages) != 3 {
		t.Fatalf("flap drew %d outages; want 3", len(sc.Outages))
	}
	for i, o := range sc.Outages {
		wantFrom := time.Second + time.Duration(i)*100*time.Millisecond
		if o.Link != 2 || o.From != wantFrom || o.To != wantFrom+50*time.Millisecond {
			t.Fatalf("flap outage %d = %v; want link 2 down [%v, %v)", i, o, wantFrom, wantFrom+50*time.Millisecond)
		}
	}
	if _, err := (Flap{Link: 99, Flaps: 1, Period: time.Second}).Generate(g, time.Second, 0); err == nil {
		t.Fatal("flap on an out-of-range link generated; want error")
	}
}

func TestSRLGGenerate(t *testing.T) {
	g := graph.Ring(6)
	s := SRLG{Links: []graph.LinkID{1, 3, 4}, At: time.Second, Down: 500 * time.Millisecond}
	sc, err := s.Generate(g, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Outages) != 3 {
		t.Fatalf("srlg drew %d outages; want 3", len(sc.Outages))
	}
	for _, o := range sc.Outages {
		if o.From != time.Second || o.To != 1500*time.Millisecond {
			t.Fatalf("srlg member %v not cut together at [1s, 1.5s)", o)
		}
	}
	// Down=0 means never repaired.
	sc, err = SRLG{Links: []graph.LinkID{0}, At: time.Second}.Generate(g, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Outages[0].To != Forever {
		t.Fatalf("srlg with no down duration repaired at %v; want Forever", sc.Outages[0].To)
	}
	if _, err := (SRLG{Links: []graph.LinkID{42}, At: 0}).Generate(g, time.Second, 0); err == nil {
		t.Fatal("srlg with an out-of-range member generated; want error")
	}
}

func TestNodeOutageGenerate(t *testing.T) {
	g := graph.Ring(6)
	sc, err := NodeOutage{Node: 3, At: time.Second, Down: 200 * time.Millisecond}.Generate(g, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Outages) != 1 || sc.Outages[0].Node != 3 {
		t.Fatalf("node outage = %v; want one outage of node 3", sc.Outages)
	}
	if _, err := (NodeOutage{Node: 99}).Generate(g, time.Second, 0); err == nil {
		t.Fatal("outage of an out-of-range node generated; want error")
	}
}

func TestRegionalGenerate(t *testing.T) {
	g := graph.Grid(4, 4)
	sc, err := Regional{Center: 5, Radius: 1, At: time.Second, Down: time.Second}.Generate(g, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 5 of a 4×4 grid is interior: the radius-1 ball is itself + 4
	// neighbours.
	if len(sc.Outages) != 5 {
		t.Fatalf("radius-1 region around an interior grid node failed %d nodes; want 5", len(sc.Outages))
	}
	// Radius 0 fails the center alone.
	sc, err = Regional{Center: 5, Radius: 0, At: time.Second}.Generate(g, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Outages) != 1 || sc.Outages[0].Node != 5 {
		t.Fatalf("radius-0 region = %v; want the center alone", sc.Outages)
	}
	if _, err := (Regional{Center: 99}).Generate(g, time.Second, 0); err == nil {
		t.Fatal("region centered outside the graph generated; want error")
	}
}

func TestHopBall(t *testing.T) {
	g := graph.Ring(8)
	ball := HopBall(g, 0, 2)
	want := map[graph.NodeID]bool{0: true, 1: true, 2: true, 6: true, 7: true}
	if len(ball) != len(want) {
		t.Fatalf("HopBall(ring:8, 0, 2) = %v; want the 5-node arc around 0", ball)
	}
	for _, n := range ball {
		if !want[n] {
			t.Fatalf("HopBall contains %d; want %v", n, want)
		}
	}
	// A radius beyond the diameter covers everything.
	if got := len(HopBall(g, 0, 100)); got != g.NumNodes() {
		t.Fatalf("HopBall with huge radius covers %d nodes; want %d", got, g.NumNodes())
	}
}

// TestGenerationBounded: hostile or mistyped specs must fail with a
// descriptive error instead of allocating without bound.
func TestGenerationBounded(t *testing.T) {
	g := graph.Ring(4)
	if _, err := (MTBF{MeanUp: 1, MeanDown: 1}).Generate(g, time.Second, 1); err == nil {
		t.Fatal("nanosecond MTBF means generated; want an outage-cap error")
	}
	if err := (Flap{Link: 0, Flaps: MaxOutages + 1, Period: time.Second}).Validate(); err == nil {
		t.Fatal("two-billion-flap storm validated; want an error")
	}
}
