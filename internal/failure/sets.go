package failure

import (
	"fmt"
	"math/rand"
	"sort"

	"recycle/internal/graph"
)

// This file is the combinatorial substrate of k-failure certification
// (internal/certify): the element universe an adversary draws failure
// sets from, exact k-subset enumeration for the exhaustive sweeps, and
// the seeded neighbour moves the simulated-annealing search perturbs
// candidate sets with. It lives here, beside the Oracle, so the set a
// search examines and the scenario the referee judges are built from the
// same vocabulary (StaticScenario bridges the two).

// Element is one failable unit of the certification universe: exactly one
// of Link/Node is set (the other holds its No* sentinel), mirroring
// Outage. A node element means "every link incident to the node", the
// paper's §4 model of a dead router.
type Element struct {
	Link graph.LinkID
	Node graph.NodeID
}

// LinkElement returns the element failing link l.
func LinkElement(l graph.LinkID) Element {
	return Element{Link: l, Node: graph.NoNode}
}

// NodeElement returns the element failing node n.
func NodeElement(n graph.NodeID) Element {
	return Element{Link: graph.NoLink, Node: n}
}

// IsNode reports whether the element is a node failure.
func (e Element) IsNode() bool { return e.Node != graph.NoNode }

// String renders the element for certificates and error messages.
func (e Element) String() string {
	if e.IsNode() {
		return fmt.Sprintf("node %d", e.Node)
	}
	return fmt.Sprintf("link %d", e.Link)
}

// ElementMode selects which units of the graph a certification sweep may
// fail simultaneously.
type ElementMode int

const (
	// LinkFailures draws from links only — the paper's primary regime.
	LinkFailures ElementMode = iota
	// NodeFailures draws from nodes only.
	NodeFailures
	// LinkAndNodeFailures draws from the union.
	LinkAndNodeFailures
)

// String names the mode for reports.
func (m ElementMode) String() string {
	switch m {
	case LinkFailures:
		return "links"
	case NodeFailures:
		return "nodes"
	case LinkAndNodeFailures:
		return "links+nodes"
	}
	return fmt.Sprintf("ElementMode(%d)", int(m))
}

// Universe returns the ordered element universe of g for a mode: links in
// LinkID order, then nodes in NodeID order. Enumeration and neighbour
// moves index into this slice, so a (graph, mode) pair fixes the search
// space deterministically.
func Universe(g *graph.Graph, mode ElementMode) []Element {
	var out []Element
	if mode == LinkFailures || mode == LinkAndNodeFailures {
		for l := 0; l < g.NumLinks(); l++ {
			out = append(out, LinkElement(graph.LinkID(l)))
		}
	}
	if mode == NodeFailures || mode == LinkAndNodeFailures {
		for n := 0; n < g.NumNodes(); n++ {
			out = append(out, NodeElement(graph.NodeID(n)))
		}
	}
	return out
}

// FailureSetOf expands elements into the concrete link failure set a
// walker consults: node elements contribute every incident link.
func FailureSetOf(g *graph.Graph, elems []Element) *graph.FailureSet {
	fs := graph.NewFailureSet()
	for _, e := range elems {
		if e.IsNode() {
			for _, nb := range g.Neighbors(e.Node) {
				fs.Add(nb.Link)
			}
			continue
		}
		fs.Add(e.Link)
	}
	return fs
}

// StaticScenario wraps a static element set as a Scenario holding every
// element down for the whole run — the bridge from a certification
// counterexample to the Oracle that referees it, and to the resilience
// sweep that replays it as a regression pin.
func StaticScenario(name string, elems []Element) *Scenario {
	sc := &Scenario{Name: name}
	for _, e := range elems {
		if e.IsNode() {
			sc.Outages = append(sc.Outages, NodeOutageAt(e.Node, 0, Forever))
			continue
		}
		sc.Outages = append(sc.Outages, LinkOutage(e.Link, 0, Forever))
	}
	return sc
}

// Subsets enumerates every k-subset of [0, n) in lexicographic order,
// invoking yield with a strictly increasing index slice. The slice is
// reused between calls — copy it to retain. yield returning false stops
// the enumeration; Subsets reports whether it ran to completion. k == 0
// yields the empty set once; k > n yields nothing.
func Subsets(n, k int, yield func(idx []int) bool) bool {
	if k < 0 || k > n {
		return true
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !yield(idx) {
			return false
		}
		// Advance: find the rightmost index that can still move right.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return true
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CountSubsets returns C(n, k) — the number of sets Subsets yields —
// saturating at MaxInt64 so sweep planners can budget without overflow.
func CountSubsets(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	c := int64(1)
	for i := 1; i <= k; i++ {
		// c = c * (n-k+i) / i, exact at every step.
		hi := int64(n - k + i)
		if c > maxInt64/hi {
			return maxInt64
		}
		c = c * hi / int64(i)
	}
	return c
}

// RandomSubset draws a uniform random size-k subset of [0, n), sorted —
// the restart state of the annealing search. It panics when k > n.
func RandomSubset(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("failure: RandomSubset(%d, %d): k exceeds universe", n, k))
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// NeighbourMove proposes an annealing neighbour of a sorted element-index
// set over a universe of n elements: usually one member is swapped for a
// random non-member; with small probability the set grows (below maxSize)
// or shrinks (above one element). `prefer` optionally biases the inserted
// element — when non-empty, the replacement is drawn from it (filtered to
// non-members) with probability ~2/3, which is how the guided search
// steers moves toward the links the current walk actually consulted. The
// returned set is fresh, sorted and duplicate-free; the input is never
// modified. When no move is possible (the set already is the whole
// universe and at both size bounds) the result is an unchanged copy.
func NeighbourMove(rng *rand.Rand, set []int, n, maxSize int, prefer []int) []int {
	out := append([]int(nil), set...)
	if n == 0 {
		return out
	}
	member := make(map[int]bool, len(out))
	for _, i := range out {
		member[i] = true
	}
	pick := func() (int, bool) {
		// Draw an element outside the set, honouring the preference list
		// when it still has non-members.
		if len(prefer) > 0 && rng.Intn(3) != 0 {
			cand := make([]int, 0, len(prefer))
			for _, p := range prefer {
				if p >= 0 && p < n && !member[p] {
					cand = append(cand, p)
				}
			}
			if len(cand) > 0 {
				return cand[rng.Intn(len(cand))], true
			}
		}
		if len(out) >= n {
			return 0, false
		}
		for {
			if c := rng.Intn(n); !member[c] {
				return c, true
			}
		}
	}

	op := rng.Intn(10)
	switch {
	case op == 0 && len(out) < maxSize: // grow
		if c, ok := pick(); ok {
			out = append(out, c)
		}
	case op == 1 && len(out) > 1: // shrink
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	default: // swap
		if len(out) == 0 {
			if c, ok := pick(); ok && maxSize > 0 {
				out = append(out, c)
			}
			break
		}
		if c, ok := pick(); ok {
			out[rng.Intn(len(out))] = c
		}
	}
	sort.Ints(out)
	return out
}
