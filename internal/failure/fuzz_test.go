package failure

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"recycle/internal/graph"
)

// FuzzParseScenario asserts the spec parser never panics, that every
// error is descriptive (non-empty, prefixed with the package name so a
// CLI user knows who is complaining), and that anything that parses also
// survives Validate and Generate on a small topology — the full path a
// prsim -scenario flag exercises.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"mtbf:up=10s,down=200ms",
		"mtbf:up=10s,down=200ms,links=0-3",
		"flap:link=3,at=1s,flaps=10,period=20ms",
		"srlg:links=3-7;9,at=1s,down=500ms",
		"node:id=4,at=1s,down=500ms",
		"region:center=12,radius=2,at=1s,down=500ms",
		"mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms",
		"mtbf:up=,down=200ms",
		"srlg:links=9-3",
		"region:center=-1",
		"quake:mag=9",
		"mtbf:up=10s,down=200ms,up=20s",
		"+++",
		"node:id=99999999999999999999",
	} {
		f.Add(seed)
	}
	g := graph.Ring(8)
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseScenario(spec)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScenario(%q): empty error message", spec)
			}
			if !strings.Contains(err.Error(), "failure:") && !strings.Contains(err.Error(), "link list item") {
				t.Fatalf("ParseScenario(%q): error %q lacks the failure: prefix", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("ParseScenario(%q) returned nil process and nil error", spec)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseScenario(%q) returned a process its own Validate rejects: %v", spec, err)
		}
		// Generation and normalisation may fail (graph-dependent bounds,
		// outage caps, duration overflow on extreme at=/period= values)
		// but must not panic, and their errors must say something.
		sc, err := p.Generate(g, 2*time.Second, 1)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScenario(%q): Generate failed with an empty error", spec)
			}
			return
		}
		if _, err := sc.Events(g); err != nil && err.Error() == "" {
			t.Fatalf("ParseScenario(%q): Events failed with an empty error", spec)
		}
	})
}

// FuzzParseScript mirrors FuzzParseScenario for scripted scenario files.
func FuzzParseScript(f *testing.F) {
	f.Add("# background\nmtbf:up=4s,down=300ms\nsrlg:links=0;1,at=1s\n")
	f.Add("")
	f.Add("flap:link=0")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, script string) {
		p, err := ParseScript(strings.NewReader(script))
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScript(%q): empty error message", script)
			}
			return
		}
		if p == nil {
			t.Fatalf("ParseScript(%q) returned nil process and nil error", script)
		}
	})
}

// FuzzNeighbourMove asserts the annealing move kernel preserves its
// invariants for arbitrary (universe, cap, set, prefer) shapes: the
// result is non-empty, capped, strictly sorted (so dup-free), in-range,
// and at most one element away from the input — a real neighbour.
func FuzzNeighbourMove(f *testing.F) {
	f.Add(int64(1), 12, 4, uint16(0b10100100), uint16(0b0110))
	f.Add(int64(7), 3, 3, uint16(0b111), uint16(0))
	f.Add(int64(9), 1, 1, uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n, maxSize int, setBits, preferBits uint16) {
		if n < 1 || n > 16 || maxSize < 1 || maxSize > n {
			t.Skip()
		}
		var set, prefer []int
		for i := 0; i < n; i++ {
			if setBits&(1<<i) != 0 && len(set) < maxSize {
				set = append(set, i)
			}
			if preferBits&(1<<i) != 0 {
				prefer = append(prefer, i)
			}
		}
		if len(set) == 0 {
			set = []int{0}
		}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 32; step++ {
			next := NeighbourMove(rng, set, n, maxSize, prefer)
			if len(next) < 1 || len(next) > maxSize {
				t.Fatalf("size %d outside [1,%d]: %v", len(next), maxSize, next)
			}
			inNext := map[int]bool{}
			for i, m := range next {
				if m < 0 || m >= n {
					t.Fatalf("member %d outside universe [0,%d): %v", m, n, next)
				}
				if i > 0 && next[i] <= next[i-1] {
					t.Fatalf("not strictly sorted: %v", next)
				}
				inNext[m] = true
			}
			inSet := map[int]bool{}
			added, removed := 0, 0
			for _, m := range set {
				inSet[m] = true
				if !inNext[m] {
					removed++
				}
			}
			for _, m := range next {
				if !inSet[m] {
					added++
				}
			}
			if added > 1 || removed > 1 {
				t.Fatalf("move %v -> %v changes %d+%d elements; a neighbour changes at most one each way", set, next, added, removed)
			}
			set = next
		}
	})
}

// FuzzSubsets cross-checks the lexicographic enumerator against the
// closed-form count and the per-set invariants the sweeps rely on.
func FuzzSubsets(f *testing.F) {
	f.Add(5, 2)
	f.Add(16, 0)
	f.Add(16, 16)
	f.Add(3, 5)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n < 0 || n > 18 || k < 0 || k > 6 {
			t.Skip()
		}
		var count int64
		var prev []int
		complete := Subsets(n, k, func(idx []int) bool {
			count++
			if len(idx) != k {
				t.Fatalf("set %v has size %d, want %d", idx, len(idx), k)
			}
			for i, v := range idx {
				if v < 0 || v >= n {
					t.Fatalf("set %v outside [0,%d)", idx, n)
				}
				if i > 0 && idx[i] <= idx[i-1] {
					t.Fatalf("set %v not strictly increasing", idx)
				}
			}
			if prev != nil && !lexLess(prev, idx) {
				t.Fatalf("enumeration not lexicographic: %v before %v", prev, idx)
			}
			prev = append(prev[:0], idx...)
			return true
		})
		if !complete {
			t.Fatal("unconditional yield must complete")
		}
		if want := CountSubsets(n, k); count != want {
			t.Fatalf("Subsets(%d,%d) yielded %d sets, CountSubsets says %d", n, k, count, want)
		}
	})
}

// lexLess reports a < b in lexicographic order (equal lengths).
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
