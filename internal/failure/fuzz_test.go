package failure

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/graph"
)

// FuzzParseScenario asserts the spec parser never panics, that every
// error is descriptive (non-empty, prefixed with the package name so a
// CLI user knows who is complaining), and that anything that parses also
// survives Validate and Generate on a small topology — the full path a
// prsim -scenario flag exercises.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"mtbf:up=10s,down=200ms",
		"mtbf:up=10s,down=200ms,links=0-3",
		"flap:link=3,at=1s,flaps=10,period=20ms",
		"srlg:links=3-7;9,at=1s,down=500ms",
		"node:id=4,at=1s,down=500ms",
		"region:center=12,radius=2,at=1s,down=500ms",
		"mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms",
		"mtbf:up=,down=200ms",
		"srlg:links=9-3",
		"region:center=-1",
		"quake:mag=9",
		"mtbf:up=10s,down=200ms,up=20s",
		"+++",
		"node:id=99999999999999999999",
	} {
		f.Add(seed)
	}
	g := graph.Ring(8)
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseScenario(spec)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScenario(%q): empty error message", spec)
			}
			if !strings.Contains(err.Error(), "failure:") && !strings.Contains(err.Error(), "link list item") {
				t.Fatalf("ParseScenario(%q): error %q lacks the failure: prefix", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("ParseScenario(%q) returned nil process and nil error", spec)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseScenario(%q) returned a process its own Validate rejects: %v", spec, err)
		}
		// Generation and normalisation may fail (graph-dependent bounds,
		// outage caps, duration overflow on extreme at=/period= values)
		// but must not panic, and their errors must say something.
		sc, err := p.Generate(g, 2*time.Second, 1)
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScenario(%q): Generate failed with an empty error", spec)
			}
			return
		}
		if _, err := sc.Events(g); err != nil && err.Error() == "" {
			t.Fatalf("ParseScenario(%q): Events failed with an empty error", spec)
		}
	})
}

// FuzzParseScript mirrors FuzzParseScenario for scripted scenario files.
func FuzzParseScript(f *testing.F) {
	f.Add("# background\nmtbf:up=4s,down=300ms\nsrlg:links=0;1,at=1s\n")
	f.Add("")
	f.Add("flap:link=0")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, script string) {
		p, err := ParseScript(strings.NewReader(script))
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("ParseScript(%q): empty error message", script)
			}
			return
		}
		if p == nil {
			t.Fatalf("ParseScript(%q) returned nil process and nil error", script)
		}
	})
}
