package failure

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/graph"
)

func TestParseScenarioKinds(t *testing.T) {
	cases := []struct {
		spec string
		want Process
	}{
		{"mtbf:up=10s,down=200ms", MTBF{MeanUp: 10 * time.Second, MeanDown: 200 * time.Millisecond}},
		{"mtbf:up=4s,down=1s,links=0-2;5", MTBF{MeanUp: 4 * time.Second, MeanDown: time.Second,
			Links: []graph.LinkID{0, 1, 2, 5}}},
		{"flap:link=3,at=1s,flaps=10,period=20ms", Flap{Link: 3, At: time.Second, Flaps: 10, Period: 20 * time.Millisecond}},
		{"flap:link=3", Flap{Link: 3, Flaps: 10, Period: 100 * time.Millisecond}},
		{"srlg:links=3-7;9,at=1s,down=500ms", SRLG{Links: []graph.LinkID{3, 4, 5, 6, 7, 9},
			At: time.Second, Down: 500 * time.Millisecond}},
		{"node:id=4,at=1s,down=500ms", NodeOutage{Node: 4, At: time.Second, Down: 500 * time.Millisecond}},
		{"region:center=12,radius=2,at=1s", Regional{Center: 12, Radius: 2, At: time.Second}},
	}
	for _, c := range cases {
		p, err := ParseScenario(c.spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", c.spec, err)
		}
		if got, want := asComparable(t, p), asComparable(t, c.want); got != want {
			t.Fatalf("ParseScenario(%q) = %#v; want %#v", c.spec, p, c.want)
		}
	}
}

// asComparable renders a process for equality checks (MTBF carries a
// slice, so direct == does not apply).
func asComparable(t *testing.T, p Process) string {
	t.Helper()
	switch v := p.(type) {
	case MTBF:
		return "mtbf" + v.MeanUp.String() + v.MeanDown.String() + linkStr(v.Links)
	case Flap:
		return "flap" + v.At.String() + v.Period.String() + string(rune(v.Link)) + string(rune(v.Flaps))
	case SRLG:
		return "srlg" + v.At.String() + v.Down.String() + linkStr(v.Links)
	case NodeOutage:
		return "node" + v.At.String() + v.Down.String() + string(rune(v.Node))
	case Regional:
		return "region" + v.At.String() + v.Down.String() + string(rune(v.Center)) + string(rune(v.Radius))
	}
	t.Fatalf("unexpected process type %T", p)
	return ""
}

func linkStr(links []graph.LinkID) string {
	var b strings.Builder
	for _, l := range links {
		b.WriteRune(rune(l))
	}
	return b.String()
}

func TestParseScenarioMulti(t *testing.T) {
	p, err := ParseScenario("mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := p.(Multi)
	if !ok {
		t.Fatalf("composed spec parsed to %T; want Multi", p)
	}
	if len(m.Processes) != 2 {
		t.Fatalf("Multi has %d members; want 2", len(m.Processes))
	}
	if m.Name() != "mtbf+srlg" {
		t.Fatalf("Multi.Name() = %q; want mtbf+srlg", m.Name())
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "unknown scenario kind"},
		{"quake:mag=9", "unknown scenario kind"},
		{"mtbf", "needs up=<duration> and down=<duration>"},
		{"mtbf:up=10s", "needs up=<duration> and down=<duration>"},
		{"mtbf:up=bogus,down=1s", "bad up"},
		{"mtbf:up=10s,down=200ms,bogus=1", "unknown option"},
		{"mtbf:up=10s,down=200ms,center=3", `option "center" does not apply to mtbf`},
		{"mtbf:up", "want key=value"},
		{"mtbf:up=", "want key=value"},
		{"mtbf:up=-4s,down=1s", "non-positive mean up"},
		{"mtbf:up=4s,down=-1s", "non-positive mean down"},
		{"flap:at=1s", "needs link=<id>"},
		{"flap:link=-2", "negative link"},
		{"flap:link=2,flaps=0", "at least one flap"},
		{"flap:link=2,period=-5ms", "non-positive period"},
		{"srlg:at=1s", "needs links=<list>"},
		{"srlg:links=9-3", "want <id> or <lo>-<hi>"},
		{"srlg:links=x", "link list item"},
		{"srlg:links=0-9999999", "implausibly large"},
		{"srlg:links=0;1,at=-1s", "negative cut time"},
		{"node:at=1s", "needs id=<node>"},
		{"node:id=-1", "negative node"},
		{"node:id=1,down=-1s", "negative duration"},
		{"region:radius=2", "needs center=<node>"},
		{"region:center=0,radius=-1", "negative radius"},
		{"mtbf:up=1s,down=1s+flap", "needs link"},
	}
	for _, c := range cases {
		_, err := ParseScenario(c.spec)
		if err == nil {
			t.Fatalf("ParseScenario(%q) = nil error; want error containing %q", c.spec, c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseScenario(%q) error %q does not contain %q", c.spec, err, c.want)
		}
	}
}

func TestParseScript(t *testing.T) {
	script := `
# background noise
mtbf:up=4s,down=300ms

srlg:links=0;1,at=1s,down=500ms  # the correlated cut
node:id=2,at=2s,down=100ms
`
	p, err := ParseScript(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := p.(Multi)
	if !ok {
		t.Fatalf("script parsed to %T; want Multi", p)
	}
	if got, want := m.Name(), "mtbf+srlg+node"; got != want {
		t.Fatalf("script process name = %q; want %q", got, want)
	}

	// A single-spec script unwraps to the bare process.
	p, err = ParseScript(strings.NewReader("flap:link=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(Flap); !ok {
		t.Fatalf("single-line script parsed to %T; want Flap", p)
	}

	// Errors carry the line number; empty scripts are rejected.
	_, err = ParseScript(strings.NewReader("mtbf:up=1s,down=1s\nbogus:x=1\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("script error %v does not name line 2", err)
	}
	_, err = ParseScript(strings.NewReader("# nothing\n\n"))
	if err == nil || !strings.Contains(err.Error(), "no scenario specs") {
		t.Fatalf("empty script error = %v; want 'no scenario specs'", err)
	}
}

func TestSpecRoundTripGenerates(t *testing.T) {
	// Every documented example spec must parse AND generate on a real
	// topology — the grammar in the package comment stays honest.
	g := graph.Ring(16)
	for _, spec := range []string{
		"mtbf:up=10s,down=200ms",
		"flap:link=3,at=1s,flaps=10,period=20ms",
		"srlg:links=3-7;9,at=1s,down=500ms",
		"node:id=4,at=1s,down=500ms",
		"region:center=12,radius=2,at=1s,down=500ms",
		"mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms",
	} {
		p, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", spec, err)
		}
		sc, err := p.Generate(g, 4*time.Second, 1)
		if err != nil {
			t.Fatalf("Generate(%q): %v", spec, err)
		}
		if err := sc.Validate(g); err != nil {
			t.Fatalf("generated scenario of %q invalid: %v", spec, err)
		}
	}
}
