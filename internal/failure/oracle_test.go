package failure

import (
	"math/rand"
	"testing"
	"time"

	"recycle/internal/graph"
)

// TestOraclePropertyAgainstReachability is the referee's own referee: on
// 100 random 2-edge-connected graphs, draw a random timed failure
// scenario, then check at random instants that the oracle's ConnectedAt
// answer equals a from-scratch graph.ReachableUnder BFS over the failure
// set the scenario imposes at that instant (reconstructed independently
// from the outage intervals, not via Events). Violation classification
// hinges on exactly this equivalence: a loss is excusable iff
// ReachableUnder would say the pair was cut.
func TestOraclePropertyAgainstReachability(t *testing.T) {
	const horizon = 4 * time.Second
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 6 + rng.Intn(15)
		g := graph.RandomTwoConnected(n, n+rng.Intn(n), int64(trial))
		// A random pile of outages: some links, some nodes, overlapping
		// freely, a few never repaired.
		sc := &Scenario{Name: "prop"}
		for k := 2 + rng.Intn(8); k > 0; k-- {
			from := time.Duration(rng.Int63n(int64(horizon)))
			to := from + time.Duration(1+rng.Int63n(int64(time.Second)))
			if rng.Intn(6) == 0 {
				to = Forever
			}
			if rng.Intn(4) == 0 {
				sc.Outages = append(sc.Outages, NodeOutageAt(graph.NodeID(rng.Intn(n)), from, to))
			} else {
				sc.Outages = append(sc.Outages, LinkOutage(graph.LinkID(rng.Intn(g.NumLinks())), from, to))
			}
		}
		oracle, err := NewOracle(g, sc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// groundTruth reconstructs the failure set at t directly from the
		// outage intervals — deliberately NOT via Events, so the test
		// catches normalisation bugs rather than inheriting them.
		groundTruth := func(at time.Duration) *graph.FailureSet {
			fs := graph.NewFailureSet()
			for _, o := range sc.Outages {
				if at < o.From || (o.To != Forever && at >= o.To) {
					continue
				}
				if o.Node != graph.NoNode {
					for _, nb := range g.Neighbors(o.Node) {
						fs.Add(nb.Link)
					}
				} else {
					fs.Add(o.Link)
				}
			}
			return fs
		}
		for q := 0; q < 50; q++ {
			at := time.Duration(rng.Int63n(int64(horizon + time.Second)))
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			reach := graph.ReachableUnder(g, src, groundTruth(at))
			if got, want := oracle.ConnectedAt(src, dst, at), reach[dst]; got != want {
				t.Fatalf("trial %d: ConnectedAt(%d, %d, %v) = %v; BFS over the interval-reconstructed failure set says %v\nscenario: %v",
					trial, src, dst, at, got, want, sc.Outages)
			}
			// The oracle's own failure set must match the reconstruction.
			fs, want := oracle.FailuresAt(at), groundTruth(at)
			if fs.Len() != want.Len() {
				t.Fatalf("trial %d: FailuresAt(%v) = %v; want %v", trial, at, fs, want)
			}
			for _, l := range want.Links() {
				if !fs.Down(l) {
					t.Fatalf("trial %d: FailuresAt(%v) misses link %d; want %v", trial, at, l, want)
				}
			}
		}
	}
}

func TestOracleConnectedThroughout(t *testing.T) {
	// ring:4 with links 0 (0-1) and 3 (3-0): node 0 is cut off while both
	// are down, [1s, 2s).
	g := graph.Ring(4)
	sc := &Scenario{Name: "cut", Outages: []Outage{
		LinkOutage(0, time.Second, 2*time.Second),
		LinkOutage(3, time.Second, 2*time.Second),
	}}
	oracle, err := NewOracle(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.ConnectedAt(0, 2, 1500*time.Millisecond) {
		t.Fatal("node 0 connected while both incident links are down")
	}
	if !oracle.ConnectedAt(0, 2, 2*time.Second) {
		t.Fatal("node 0 still cut at the repair instant; [from, to) means repaired")
	}
	// An interval that overlaps the partition epoch is not connected
	// throughout; one entirely before or after is.
	if oracle.ConnectedThroughout(0, 2, 500*time.Millisecond, 1200*time.Millisecond) {
		t.Fatal("interval crossing the partition reported connected throughout")
	}
	if !oracle.ConnectedThroughout(0, 2, 0, 999*time.Millisecond) {
		t.Fatal("pre-partition interval reported disconnected")
	}
	if !oracle.ConnectedThroughout(0, 2, 2*time.Second, 3*time.Second) {
		t.Fatal("post-repair interval reported disconnected")
	}
	if oracle.Epochs() != 3 {
		t.Fatalf("Epochs() = %d; want 3 (before, during, after)", oracle.Epochs())
	}
}

func TestOracleStableThroughout(t *testing.T) {
	g := graph.Ring(4)
	sc := &Scenario{Name: "one", Outages: []Outage{LinkOutage(0, time.Second, 2*time.Second)}}
	oracle, err := NewOracle(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.StableThroughout(0, 999*time.Millisecond) {
		t.Fatal("pre-failure window reported unstable")
	}
	if oracle.StableThroughout(500*time.Millisecond, 1500*time.Millisecond) {
		t.Fatal("window crossing the failure reported stable")
	}
	// A transition exactly at the window start does not count: the packet
	// lives entirely under the new state.
	if !oracle.StableThroughout(time.Second, 1500*time.Millisecond) {
		t.Fatal("window starting at the failure instant reported unstable")
	}
}

func TestOracleOutagesAtTimeZero(t *testing.T) {
	// An outage from t=0 must land in epoch 0, not create a same-instant
	// second epoch.
	g := graph.Ring(4)
	sc := &Scenario{Name: "zero", Outages: []Outage{LinkOutage(0, 0, time.Second)}}
	oracle, err := NewOracle(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.FailuresAt(0).Down(0) {
		t.Fatal("t=0 outage invisible at t=0")
	}
	if oracle.FailuresAt(time.Second).Down(0) {
		t.Fatal("t=0 outage still live after its repair")
	}
	if oracle.Epochs() != 2 {
		t.Fatalf("Epochs() = %d; want 2 (down from the start, then repaired)", oracle.Epochs())
	}
	// Negative query times clamp to 0.
	if !oracle.ConnectedAt(0, 2, -time.Second) {
		t.Fatal("negative-time query on a ring with one failure reported disconnected")
	}
}
