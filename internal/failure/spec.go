package failure

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"recycle/internal/graph"
)

// ParseScenario parses a command-line failure process specification:
//
//	mtbf:up=10s,down=200ms           independent per-link exponential up/down
//	mtbf:up=10s,down=200ms,links=0-3 restricted to links 0..3
//	flap:link=3,at=1s,flaps=10,period=20ms
//	srlg:links=3-7;9,at=1s,down=500ms
//	node:id=4,at=1s,down=500ms
//	region:center=12,radius=2,at=1s,down=500ms
//
// Link lists are ';'-separated items, each a single ID or an inclusive
// A-B range ("3-7;9"). Times (at=, up=, down=, period=) are Go durations.
// Omitting at= starts an outage at t=0; omitting down= on srlg/node/
// region leaves the element broken for the rest of the run. Processes
// compose with '+' into one correlated scenario:
//
//	mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms
//
// The returned Process is validated (graph-dependent bounds — link and
// node IDs — are checked at Generate time, against the actual topology).
func ParseScenario(spec string) (Process, error) {
	parts := strings.Split(spec, "+")
	if len(parts) == 1 {
		return parseOne(parts[0])
	}
	m := Multi{}
	for _, part := range parts {
		p, err := parseOne(part)
		if err != nil {
			return nil, err
		}
		m.Processes = append(m.Processes, p)
	}
	return m, nil
}

// ParseScript parses a scripted scenario file: one ParseScenario spec per
// line, '#' comments and blank lines ignored, all lines composed into one
// process (exactly like joining them with '+').
func ParseScript(r io.Reader) (Process, error) {
	var m Multi
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		p, err := ParseScenario(line)
		if err != nil {
			return nil, fmt.Errorf("failure: script line %d: %w", lineNo, err)
		}
		m.Processes = append(m.Processes, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("failure: reading script: %w", err)
	}
	if len(m.Processes) == 0 {
		return nil, fmt.Errorf("failure: script contains no scenario specs")
	}
	if len(m.Processes) == 1 {
		return m.Processes[0], nil
	}
	return m, nil
}

// scenarioKeys lists the options each spec kind accepts; anything else is
// rejected rather than silently ignored, so a mistyped spec never runs a
// different experiment than asked.
var scenarioKeys = map[string]map[string]bool{
	"mtbf":   {"up": true, "down": true, "links": true},
	"flap":   {"link": true, "at": true, "flaps": true, "period": true},
	"srlg":   {"links": true, "at": true, "down": true},
	"node":   {"id": true, "at": true, "down": true},
	"region": {"center": true, "radius": true, "at": true, "down": true},
}

// scenarioOpts are the parsed key=value options of one spec.
type scenarioOpts struct {
	kind   string
	up     time.Duration
	down   time.Duration
	at     time.Duration
	period time.Duration
	links  []graph.LinkID
	link   graph.LinkID
	node   graph.NodeID
	center graph.NodeID
	radius int
	flaps  int
	set    map[string]bool
}

func (o *scenarioOpts) has(key string) bool { return o.set[key] }

func parseOne(spec string) (Process, error) {
	kind, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	keys, known := scenarioKeys[kind]
	if !known {
		return nil, fmt.Errorf("failure: unknown scenario kind %q (want mtbf, flap, srlg, node or region)", kind)
	}
	o := &scenarioOpts{kind: kind, set: map[string]bool{}}
	if rest != "" {
		for _, item := range strings.Split(rest, ",") {
			key, val, found := strings.Cut(item, "=")
			if !found || val == "" {
				return nil, fmt.Errorf("failure: %s spec: want key=value, got %q", kind, item)
			}
			if !keys[key] {
				for _, other := range scenarioKeys {
					if other[key] {
						return nil, fmt.Errorf("failure: %s spec: option %q does not apply to %s scenarios", kind, key, kind)
					}
				}
				return nil, fmt.Errorf("failure: %s spec: unknown option %q", kind, key)
			}
			var err error
			switch key {
			case "up":
				o.up, err = time.ParseDuration(val)
			case "down":
				o.down, err = time.ParseDuration(val)
			case "at":
				o.at, err = time.ParseDuration(val)
			case "period":
				o.period, err = time.ParseDuration(val)
			case "links":
				o.links, err = parseLinkList(val)
			case "link":
				var id int
				id, err = strconv.Atoi(val)
				o.link = graph.LinkID(id)
			case "id":
				var id int
				id, err = strconv.Atoi(val)
				o.node = graph.NodeID(id)
			case "center":
				var id int
				id, err = strconv.Atoi(val)
				o.center = graph.NodeID(id)
			case "radius":
				o.radius, err = strconv.Atoi(val)
			case "flaps":
				o.flaps, err = strconv.Atoi(val)
			}
			if err != nil {
				return nil, fmt.Errorf("failure: %s spec: bad %s %q: %w", kind, key, val, err)
			}
			o.set[key] = true
		}
	}
	return buildProcess(o)
}

func buildProcess(o *scenarioOpts) (Process, error) {
	var p Process
	switch o.kind {
	case "mtbf":
		if !o.has("up") || !o.has("down") {
			return nil, fmt.Errorf("failure: mtbf spec needs up=<duration> and down=<duration>")
		}
		p = MTBF{MeanUp: o.up, MeanDown: o.down, Links: o.links}
	case "flap":
		if !o.has("link") {
			return nil, fmt.Errorf("failure: flap spec needs link=<id>")
		}
		flaps, period := o.flaps, o.period
		if !o.has("flaps") {
			flaps = 10
		}
		if !o.has("period") {
			period = 100 * time.Millisecond
		}
		p = Flap{Link: o.link, At: o.at, Flaps: flaps, Period: period}
	case "srlg":
		if !o.has("links") {
			return nil, fmt.Errorf("failure: srlg spec needs links=<list> (e.g. links=3-7;9)")
		}
		p = SRLG{Links: o.links, At: o.at, Down: o.down}
	case "node":
		if !o.has("id") {
			return nil, fmt.Errorf("failure: node spec needs id=<node>")
		}
		p = NodeOutage{Node: o.node, At: o.at, Down: o.down}
	case "region":
		if !o.has("center") {
			return nil, fmt.Errorf("failure: region spec needs center=<node>")
		}
		p = Regional{Center: o.center, Radius: o.radius, At: o.at, Down: o.down}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseLinkList parses a ';'-separated list of link IDs and inclusive
// A-B ranges: "3-7;9" → [3 4 5 6 7 9].
func parseLinkList(val string) ([]graph.LinkID, error) {
	var out []graph.LinkID
	for _, item := range strings.Split(val, ";") {
		lo, hi, isRange := strings.Cut(item, "-")
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("link list item %q: %w", item, err)
		}
		b := a
		if isRange {
			if b, err = strconv.Atoi(hi); err != nil {
				return nil, fmt.Errorf("link list item %q: %w", item, err)
			}
		}
		if a < 0 || b < a {
			return nil, fmt.Errorf("link list item %q: want <id> or <lo>-<hi> with 0 ≤ lo ≤ hi", item)
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("link list item %q: range of %d links is implausibly large", item, b-a+1)
		}
		for l := a; l <= b; l++ {
			out = append(out, graph.LinkID(l))
		}
	}
	return out, nil
}
