package failure

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"recycle/internal/graph"
)

func setsTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4, 5)
	for i := 0; i < 4; i++ {
		g.AddNode("")
	}
	// A 4-cycle plus one chord.
	g.MustAddLink(0, 1, 1)
	g.MustAddLink(1, 2, 1)
	g.MustAddLink(2, 3, 1)
	g.MustAddLink(3, 0, 1)
	g.MustAddLink(0, 2, 1)
	return g.Freeze()
}

func TestUniverse(t *testing.T) {
	g := setsTestGraph(t)
	links := Universe(g, LinkFailures)
	if len(links) != 5 || links[0].IsNode() || links[4].Link != 4 {
		t.Fatalf("link universe wrong: %v", links)
	}
	nodes := Universe(g, NodeFailures)
	if len(nodes) != 4 || !nodes[0].IsNode() {
		t.Fatalf("node universe wrong: %v", nodes)
	}
	both := Universe(g, LinkAndNodeFailures)
	if len(both) != 9 || both[4].IsNode() || !both[5].IsNode() {
		t.Fatalf("combined universe wrong: %v", both)
	}
}

func TestFailureSetOfExpandsNodes(t *testing.T) {
	g := setsTestGraph(t)
	fs := FailureSetOf(g, []Element{NodeElement(0), LinkElement(1)})
	// Node 0 is incident to links 0, 3, 4.
	want := []graph.LinkID{0, 1, 3, 4}
	if got := fs.Links(); !reflect.DeepEqual(got, want) {
		t.Fatalf("expanded set = %v, want %v", got, want)
	}
}

func TestStaticScenarioReplaysThroughOracle(t *testing.T) {
	g := setsTestGraph(t)
	sc := StaticScenario("pin", []Element{LinkElement(2), NodeElement(1)})
	o, err := NewOracle(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	fs := o.FailuresAt(0)
	want := FailureSetOf(g, []Element{LinkElement(2), NodeElement(1)})
	if fs.String() != want.String() {
		t.Fatalf("oracle failures %s != expansion %s", fs, want)
	}
	if o.FailuresAt(time.Hour).String() != want.String() {
		t.Fatal("a static scenario must never repair")
	}
}

func TestSubsetsEnumeratesExactly(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 0}, {5, 1}, {5, 3}, {6, 6}, {4, 5}, {0, 0}} {
		var got [][]int
		complete := Subsets(tc.n, tc.k, func(idx []int) bool {
			got = append(got, append([]int(nil), idx...))
			return true
		})
		if !complete {
			t.Fatalf("Subsets(%d,%d) reported early stop", tc.n, tc.k)
		}
		if int64(len(got)) != CountSubsets(tc.n, tc.k) {
			t.Fatalf("Subsets(%d,%d) yielded %d sets, CountSubsets says %d",
				tc.n, tc.k, len(got), CountSubsets(tc.n, tc.k))
		}
		seen := map[string]bool{}
		for i, s := range got {
			if len(s) != tc.k {
				t.Fatalf("set %v has size %d, want %d", s, len(s), tc.k)
			}
			for j := 1; j < len(s); j++ {
				if s[j] <= s[j-1] {
					t.Fatalf("set %v not strictly increasing", s)
				}
			}
			if tc.k > 0 && s[len(s)-1] >= tc.n {
				t.Fatalf("set %v outside [0,%d)", s, tc.n)
			}
			key := setString(s)
			if seen[key] {
				t.Fatalf("duplicate set %v at position %d", s, i)
			}
			seen[key] = true
		}
	}
	// Early stop is honoured.
	calls := 0
	if Subsets(5, 2, func([]int) bool { calls++; return calls < 3 }) {
		t.Fatal("expected early-stop report")
	}
	if calls != 3 {
		t.Fatalf("stop after 3 calls, got %d", calls)
	}
}

func setString(s []int) string {
	out := ""
	for _, v := range s {
		out += string(rune('a'+v)) + ","
	}
	return out
}

func TestCountSubsets(t *testing.T) {
	cases := map[[2]int]int64{
		{5, 2}:  10,
		{52, 2}: 1326,
		{52, 3}: 22100,
		{10, 0}: 1,
		{3, 4}:  0,
		{0, 0}:  1,
	}
	for in, want := range cases {
		if got := CountSubsets(in[0], in[1]); got != want {
			t.Fatalf("CountSubsets(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
	if got := CountSubsets(500, 250); got <= 0 {
		t.Fatalf("saturating count must stay positive, got %d", got)
	}
}

func TestRandomSubsetDeterministic(t *testing.T) {
	a := RandomSubset(rand.New(rand.NewSource(9)), 20, 5)
	b := RandomSubset(rand.New(rand.NewSource(9)), 20, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different subsets: %v vs %v", a, b)
	}
	if !sort.IntsAreSorted(a) || len(a) != 5 {
		t.Fatalf("malformed subset %v", a)
	}
}

func TestNeighbourMoveInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set := []int{2, 5, 7}
	for i := 0; i < 2000; i++ {
		prefer := []int{1, 5, 9}
		if i%3 == 0 {
			prefer = nil
		}
		next := NeighbourMove(rng, set, 12, 4, prefer)
		if len(next) < 1 || len(next) > 4 {
			t.Fatalf("move produced size %d outside [1,4]: %v", len(next), next)
		}
		if !sort.IntsAreSorted(next) {
			t.Fatalf("unsorted move result %v", next)
		}
		for j := 1; j < len(next); j++ {
			if next[j] == next[j-1] {
				t.Fatalf("duplicate member in %v", next)
			}
		}
		for _, m := range next {
			if m < 0 || m >= 12 {
				t.Fatalf("member %d outside universe in %v", m, next)
			}
		}
		set = next
	}
}

func TestNeighbourMoveFullUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set := []int{0, 1, 2}
	for i := 0; i < 50; i++ {
		next := NeighbourMove(rng, set, 3, 3, nil)
		if len(next) < 1 || len(next) > 3 {
			t.Fatalf("degenerate universe move produced %v", next)
		}
		set = next
	}
}
