package failure

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/graph"
)

func TestScenarioValidate(t *testing.T) {
	g := graph.Ring(6)
	cases := []struct {
		outage Outage
		want   string
	}{
		{Outage{Link: 0, Node: 2, From: 0, To: time.Second}, "exactly one link or node"},
		{Outage{Link: graph.NoLink, Node: graph.NoNode, From: 0, To: time.Second}, "exactly one link or node"},
		{LinkOutage(99, 0, time.Second), "outside"},
		{NodeOutageAt(99, 0, time.Second), "outside"},
		{LinkOutage(0, -time.Second, time.Second), "negative start"},
		{LinkOutage(0, time.Second, time.Second), "empty interval"},
	}
	for _, c := range cases {
		sc := &Scenario{Name: "t", Outages: []Outage{c.outage}}
		err := sc.Validate(g)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Validate(%v) = %v; want error containing %q", c.outage, err, c.want)
		}
	}
	ok := &Scenario{Name: "ok", Outages: []Outage{
		LinkOutage(0, 0, Forever),
		NodeOutageAt(3, time.Second, 2*time.Second),
	}}
	if err := ok.Validate(g); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestEventsMergeOverlaps(t *testing.T) {
	g := graph.Ring(6)
	// Two overlapping outages of link 0: repairing the first cause must
	// not resurrect the link while the second still holds it down.
	sc := &Scenario{Name: "overlap", Outages: []Outage{
		LinkOutage(0, 1*time.Second, 3*time.Second),
		LinkOutage(0, 2*time.Second, 4*time.Second),
	}}
	events, err := sc.Events(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 1 * time.Second, Link: 0, Down: true},
		{At: 4 * time.Second, Link: 0, Down: false},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v; want %v", len(events), events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %v; want %v", i, events[i], want[i])
		}
	}
}

func TestEventsTouchingIntervalsMerge(t *testing.T) {
	g := graph.Ring(6)
	// Back-to-back intervals [1s,2s) and [2s,3s): the link never observes
	// an up instant between them, so they merge into one outage.
	sc := &Scenario{Name: "touch", Outages: []Outage{
		LinkOutage(0, 1*time.Second, 2*time.Second),
		LinkOutage(0, 2*time.Second, 3*time.Second),
	}}
	events, err := sc.Events(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("touching intervals produced %d events %v; want down@1s, up@3s", len(events), events)
	}
	if events[1] != (Event{At: 3 * time.Second, Link: 0, Down: false}) {
		t.Fatalf("merged repair = %v; want up@3s", events[1])
	}
}

func TestEventsForeverOmitsRepair(t *testing.T) {
	g := graph.Ring(6)
	sc := &Scenario{Name: "forever", Outages: []Outage{LinkOutage(2, time.Second, Forever)}}
	events, err := sc.Events(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Down != true {
		t.Fatalf("forever outage events = %v; want a single down transition", events)
	}
}

func TestEventsNodeExpansion(t *testing.T) {
	g := graph.Ring(6)
	sc := &Scenario{Name: "node", Outages: []Outage{NodeOutageAt(0, time.Second, 2*time.Second)}}
	events, err := sc.Events(g)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 on a ring has two incident links: 2 downs + 2 ups.
	downs, ups := 0, 0
	for _, e := range events {
		if e.Down {
			downs++
		} else {
			ups++
		}
	}
	if downs != 2 || ups != 2 {
		t.Fatalf("node outage on ring expanded to %d downs, %d ups; want 2, 2", downs, ups)
	}
	// Incident links must match graph.FailNode — the §4 dead-router model.
	fs := graph.FailNode(g, 0)
	for _, e := range events {
		if !fs.Down(e.Link) {
			t.Fatalf("event link %d is not incident to node 0 (FailNode = %v)", e.Link, fs)
		}
	}
}

func TestEventsOrdering(t *testing.T) {
	g := graph.Ring(6)
	sc := &Scenario{Name: "order", Outages: []Outage{
		LinkOutage(3, 2*time.Second, 3*time.Second),
		LinkOutage(1, 1*time.Second, 2*time.Second),
		LinkOutage(0, 2*time.Second, 4*time.Second),
	}}
	events, err := sc.Events(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.At > b.At {
			t.Fatalf("events out of time order: %v before %v", a, b)
		}
		if a.At == b.At && !a.Down && b.Down {
			t.Fatalf("repair sorted before failure at %v: %v, %v", a.At, a, b)
		}
	}
	// At t=2s: link 0 fails, link 3 fails, link 1 repairs — failures first.
	var at2 []Event
	for _, e := range events {
		if e.At == 2*time.Second {
			at2 = append(at2, e)
		}
	}
	if len(at2) != 3 || !at2[0].Down || !at2[1].Down || at2[2].Down {
		t.Fatalf("t=2s events = %v; want two failures then one repair", at2)
	}
}

func TestMultiGenerateComposesAndDecorrelates(t *testing.T) {
	g := graph.Ring(8)
	mtbf := MTBF{MeanUp: time.Second, MeanDown: 100 * time.Millisecond}
	cut := SRLG{Links: []graph.LinkID{0, 1}, At: time.Second, Down: 500 * time.Millisecond}
	m := Multi{Processes: []Process{mtbf, cut}}
	sc, err := m.Generate(g, 4*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The SRLG members must be present verbatim.
	found := 0
	for _, o := range sc.Outages {
		if (o.Link == 0 || o.Link == 1) && o.From == time.Second && o.To == 1500*time.Millisecond {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("composed scenario carries %d of the 2 SRLG outages: %v", found, sc.Outages)
	}
	// The MTBF component must NOT replay the top-level seed's draw: Multi
	// derives decorrelated sub-seeds per member.
	direct, err := mtbf.Generate(g, 4*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Outages) > 0 && len(sc.Outages) == len(direct.Outages)+2 {
		same := true
		for i, o := range direct.Outages {
			if sc.Outages[i] != o {
				same = false
				break
			}
		}
		if same {
			t.Fatal("Multi member replayed the master seed's draw; want a decorrelated sub-seed")
		}
	}
	if err := (Multi{}).Validate(); err == nil {
		t.Fatal("empty Multi validated; want error")
	}
}

func TestDrawSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := DrawSeed(1, i)
		if seen[s] {
			t.Fatalf("DrawSeed(1, %d) collides with an earlier draw", i)
		}
		seen[s] = true
	}
	if DrawSeed(1, 0) == DrawSeed(2, 0) {
		t.Fatal("different master seeds yield the same draw-0 seed")
	}
}

func TestOutageString(t *testing.T) {
	if got := LinkOutage(3, time.Second, Forever).String(); !strings.Contains(got, "link 3") || !strings.Contains(got, "forever") {
		t.Fatalf("LinkOutage.String() = %q", got)
	}
	if got := NodeOutageAt(4, 0, time.Second).String(); !strings.Contains(got, "node 4") {
		t.Fatalf("NodeOutageAt.String() = %q", got)
	}
	sc := &Scenario{Name: "s", Outages: []Outage{LinkOutage(0, 0, time.Second)}}
	if got := sc.String(); !strings.Contains(got, "1 outages") {
		t.Fatalf("Scenario.String() = %q", got)
	}
}
