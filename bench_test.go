// Benchmark harness: one benchmark per evaluation artefact of the paper.
//
//	go test -bench=Figure -benchtime=1x     # regenerate all Figure 2 panels
//	go test -bench=. -benchmem              # everything, with allocations
//
// Figure benchmarks report the reproduced curves as custom metrics:
// mean stretch, tail probability P(stretch > 5) and delivery rate per
// scheme, so the benchmark log doubles as the experiment record (see
// EXPERIMENTS.md for the paper-vs-measured comparison). Microbenchmarks
// back the §6 overhead claims: PR's per-hop decision is a table lookup,
// FCP pays a Dijkstra per failure encounter, and the embedding runs
// offline.
package recycle_test

import (
	"testing"
	"time"

	"recycle"
	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/eval"
	"recycle/internal/fcp"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/topo"
)

// benchFigure runs one Figure 2 panel per iteration and reports the curve
// summary for every scheme.
func benchFigure(b *testing.B, id string, scenarios int) {
	b.Helper()
	f, err := eval.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	if scenarios > 0 {
		f.Scenarios = scenarios
	}
	var exp *eval.Experiment
	for i := 0; i < b.N; i++ {
		exp, err = eval.RunFigure(f)
		if err != nil {
			b.Fatal(err)
		}
	}
	xs := []float64{5}
	for _, scheme := range []eval.SchemeID{eval.Reconvergence, eval.FCP, eval.PR} {
		sr := exp.SeriesFor(scheme)
		tag := map[eval.SchemeID]string{
			eval.Reconvergence: "reconv", eval.FCP: "fcp", eval.PR: "pr",
		}[scheme]
		b.ReportMetric(sr.MeanStretch(), tag+"-mean-stretch")
		b.ReportMetric(sr.CCDF(xs)[0], tag+"-P(s>5)")
		b.ReportMetric(sr.DeliveryRate(), tag+"-delivery")
	}
}

// BenchmarkFigure2aAbileneSingle regenerates Figure 2(a): Abilene, all
// single link failures.
func BenchmarkFigure2aAbileneSingle(b *testing.B) { benchFigure(b, "2a", 0) }

// BenchmarkFigure2bTeleglobeSingle regenerates Figure 2(b): Teleglobe,
// all single link failures.
func BenchmarkFigure2bTeleglobeSingle(b *testing.B) { benchFigure(b, "2b", 0) }

// BenchmarkFigure2cGeantSingle regenerates Figure 2(c): Géant, all single
// link failures.
func BenchmarkFigure2cGeantSingle(b *testing.B) { benchFigure(b, "2c", 0) }

// BenchmarkFigure2dAbilene4 regenerates Figure 2(d): Abilene, 4
// simultaneous failures.
func BenchmarkFigure2dAbilene4(b *testing.B) { benchFigure(b, "2d", 60) }

// BenchmarkFigure2eTeleglobe10 regenerates Figure 2(e): Teleglobe, 10
// simultaneous failures.
func BenchmarkFigure2eTeleglobe10(b *testing.B) { benchFigure(b, "2e", 60) }

// BenchmarkFigure2fGeant16 regenerates Figure 2(f): Géant, 16 simultaneous
// failures.
func BenchmarkFigure2fGeant16(b *testing.B) { benchFigure(b, "2f", 60) }

// BenchmarkTable1CycleTables measures constructing every router's
// cycle-following table on the paper example (Table 1 is node D's).
func BenchmarkTable1CycleTables(b *testing.B) {
	net, err := recycle.FromTopology("paper")
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < g.NumNodes(); n++ {
			_ = net.Protocol().CycleTable(recycle.NodeID(n))
		}
	}
}

// BenchmarkLossWindowMotivation runs the §1 experiment and reports packets
// lost per scheme (scaled to a 20%-loaded OC-192).
func BenchmarkLossWindowMotivation(b *testing.B) {
	net, err := recycle.FromTopology("abilene")
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph()
	src, _ := net.Node("Seattle")
	dst, _ := net.Node("LosAngeles")
	const scale = 100.0
	var prLost, rcLost float64
	for i := 0; i < b.N; i++ {
		pr, err := sim.RunLossWindow(sim.Config{
			Graph: g, Scheme: &sim.PRScheme{Protocol: net.Protocol()},
			Horizon: 3 * time.Second, DetectionDelay: 50 * time.Millisecond,
		}, src, dst, 2430, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := sim.RunLossWindow(sim.Config{
			Graph: g, Scheme: &sim.ReconvScheme{},
			Horizon: 3 * time.Second, DetectionDelay: 50 * time.Millisecond,
		}, src, dst, 2430, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		prLost = float64(pr.Generated-pr.Delivered) * scale
		rcLost = float64(rc.Generated-rc.Delivered) * scale
	}
	b.ReportMetric(prLost, "pr-lost-oc192")
	b.ReportMetric(rcLost, "reconv-lost-oc192")
}

// BenchmarkForwardDecision measures PR's per-hop work during cycle
// following — the §6 claim that packet processing overhead is
// insignificant (it is two array lookups).
func BenchmarkForwardDecision(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		b.Fatal(err)
	}
	fails := graph.NewFailureSet(0)
	hdr := core.Header{PR: true, DD: 3}
	ingress := rotation.DartID(4)
	dst := graph.NodeID(g.NumNodes() - 1)
	node := g.Link(rotation.LinkOf(ingress)).B
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Decide(node, dst, ingress, hdr, fails)
	}
}

// BenchmarkCompiledForwardDecision is BenchmarkForwardDecision on the
// compiled dataplane FIB: the same decision, same topology, same failure,
// reduced to a handful of array indexings. Compare the two to see the
// speedup the FIB compiler buys; the dataplane's own benchmarks
// (internal/dataplane) add wire-path and sharded-engine numbers.
func BenchmarkCompiledForwardDecision(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		b.Fatal(err)
	}
	fib, err := dataplane.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	hdr := core.Header{PR: true, DD: 3}
	ingress := rotation.DartID(4)
	dst := graph.NodeID(g.NumNodes() - 1)
	node := g.Link(rotation.LinkOf(ingress)).B
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fib.Decide(node, dst, ingress, hdr, st)
	}
}

// BenchmarkFCPFailureRecompute measures FCP's per-failure cost: a full
// Dijkstra at the encountering router — the computation PR avoids.
func BenchmarkFCPFailureRecompute(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	fails := graph.NewFailureSet(1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graph.ShortestPathTree(g, 0, fails)
	}
}

// BenchmarkFCPWalk measures a full FCP packet traversal under failures.
func BenchmarkFCPWalk(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	r := fcp.New(g)
	fails := graph.NewFailureSet(1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Walk(2, 20, fails)
	}
}

// BenchmarkPRWalk measures a full PR packet traversal under the same
// failures as BenchmarkFCPWalk.
func BenchmarkPRWalk(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	g := tp.Graph
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		b.Fatal(err)
	}
	fails := graph.NewFailureSet(1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Walk(2, 20, fails)
	}
}

// BenchmarkEmbedOffline measures the offline embedding step per topology —
// expensive relative to forwarding, but paid once on the designated server
// (§4.3).
func BenchmarkEmbedOffline(b *testing.B) {
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (embedding.Planar{}).Embed(tp.Graph); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoutingTableBuild measures conventional table construction (the
// substrate both PR and the baselines share).
func BenchmarkRoutingTableBuild(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = route.Build(tp.Graph, route.HopCount)
	}
}

// BenchmarkEmbedderAblation compares mean PR stretch on Géant single
// failures across embedding algorithms — the design choice DESIGN.md
// calls out (genus quality drives both correctness and stretch).
func BenchmarkEmbedderAblation(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	cases := []struct {
		name string
		e    embedding.Embedder
	}{
		{"planar", embedding.Planar{}},
		{"greedy", embedding.Greedy{}},
		{"adjacency", embedding.Adjacency{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var exp *eval.Experiment
			for i := 0; i < b.N; i++ {
				var err error
				exp, err = eval.Run(eval.Spec{
					Topology: tp,
					Schemes:  []eval.SchemeID{eval.PR},
					Failures: graph.SingleFailureScenarios(tp.Graph),
					Embedder: tc.e,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			sr := exp.SeriesFor(eval.PR)
			b.ReportMetric(sr.MeanStretch(), "mean-stretch")
			b.ReportMetric(sr.DeliveryRate(), "delivery")
		})
	}
}

// BenchmarkDiscriminatorAblation compares hop-count vs weight-sum DD on
// Géant multi-failures (§4.3 offers both).
func BenchmarkDiscriminatorAblation(b *testing.B) {
	tp := topo.Geant(topo.DistanceWeights)
	failures, err := graph.SampleFailureScenarios(tp.Graph, 5, 40, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		d    route.Discriminator
	}{{"hops", route.HopCount}, {"weights", route.WeightSum}} {
		b.Run(tc.name, func(b *testing.B) {
			var exp *eval.Experiment
			for i := 0; i < b.N; i++ {
				exp, err = eval.Run(eval.Spec{
					Topology:      tp,
					Schemes:       []eval.SchemeID{eval.PR},
					Failures:      failures,
					Discriminator: tc.d,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			sr := exp.SeriesFor(eval.PR)
			b.ReportMetric(sr.MeanStretch(), "mean-stretch")
			b.ReportMetric(sr.DeliveryRate(), "delivery")
		})
	}
}
